package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing count. All methods are no-ops on a
// nil receiver, so components can hold un-wired handles at zero cost.
type Counter struct{ v int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. Nil-safe like Counter.
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value reports the stored value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// InfBucket is the upper bound of a histogram's implicit overflow bucket.
const InfBucket = math.MaxInt64

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges in ascending order; an implicit +Inf bucket catches the rest.
// Fixed buckets keep the histogram deterministic and allocation-free on the
// observe path. Nil-safe like Counter.
type Histogram struct {
	bounds []int64
	counts []int64
	sum    int64
	count  int64
	min    int64
	max    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds a scenario's metrics. The zero value is not usable;
// construct with NewRegistry. Handles are created once and cached by name,
// so the hot path never touches the maps.
//
// Registration contract: a metric name identifies exactly one metric of
// exactly one kind for the registry's lifetime. Re-requesting a name with
// the same kind returns the original handle (components can share a metric
// without coordinating); requesting it with a different kind panics —
// otherwise Snapshot would carry two rows under one name and Get/exports
// would resolve the collision arbitrarily.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kinds:    map[string]string{},
	}
}

// claim records name as belonging to kind, panicking if another kind
// already owns it.
func (r *Registry) claim(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op handle) on a nil registry. Panics if the name is already
// registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		r.claim(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
// Panics if the name is already registered as a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		r.claim(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls reuse the first bounds). Nil-safe.
// Panics if the name is already registered as a different kind.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		r.claim(name, "histogram")
		b := append([]int64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below LE (and above the previous bound). LE is InfBucket for the
// overflow bucket.
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Row is one metric in a snapshot.
type Row struct {
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type  string `json:"type"`
	Value int64  `json:"value"`
	// Histogram-only fields.
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a registry's state at one instant, sorted by metric name so
// two identical registries render byte-identically.
type Snapshot struct {
	Rows []Row
}

// Snapshot captures every metric. Empty metrics (zero counters that were
// created but never incremented) are included: the set of rows depends only
// on which components were observed, never on what happened during the run.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for name, c := range r.counters {
		s.Rows = append(s.Rows, Row{Name: name, Type: "counter", Value: c.v})
	}
	for name, g := range r.gauges {
		s.Rows = append(s.Rows, Row{Name: name, Type: "gauge", Value: g.v})
	}
	for name, h := range r.hists {
		row := Row{Name: name, Type: "histogram", Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, b := range h.bounds {
			row.Buckets = append(row.Buckets, Bucket{LE: b, Count: h.counts[i]})
		}
		row.Buckets = append(row.Buckets, Bucket{LE: InfBucket, Count: h.counts[len(h.bounds)]})
		s.Rows = append(s.Rows, row)
	}
	sort.Slice(s.Rows, func(i, j int) bool { return s.Rows[i].Name < s.Rows[j].Name })
	return s
}

// Get returns the row with the given name, or false.
func (s Snapshot) Get(name string) (Row, bool) {
	for _, row := range s.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return Row{}, false
}

// String renders one line per metric, sorted by name.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, row := range s.Rows {
		switch row.Type {
		case "histogram":
			fmt.Fprintf(&b, "%-9s %s count=%d sum=%d min=%d max=%d", row.Type, row.Name, row.Count, row.Sum, row.Min, row.Max)
			for _, bk := range row.Buckets {
				fmt.Fprintf(&b, " le%s=%d", bucketLabel(bk.LE), bk.Count)
			}
			b.WriteString("\n")
		default:
			fmt.Fprintf(&b, "%-9s %s %d\n", row.Type, row.Name, row.Value)
		}
	}
	return b.String()
}

// WriteCSV renders the snapshot as `name,type,field,value` rows with a
// header, one row per scalar and per histogram bucket.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "type", "field", "value"}); err != nil {
		return fmt.Errorf("obs: writing metrics CSV: %w", err)
	}
	row := func(name, typ, field string, v int64) error {
		return cw.Write([]string{name, typ, field, strconv.FormatInt(v, 10)})
	}
	for _, r := range s.Rows {
		var err error
		switch r.Type {
		case "histogram":
			for _, f := range []struct {
				field string
				v     int64
			}{{"count", r.Count}, {"sum", r.Sum}, {"min", r.Min}, {"max", r.Max}} {
				if err = row(r.Name, r.Type, f.field, f.v); err != nil {
					break
				}
			}
			if err == nil {
				for _, bk := range r.Buckets {
					if err = row(r.Name, r.Type, "le"+bucketLabel(bk.LE), bk.Count); err != nil {
						break
					}
				}
			}
		default:
			err = row(r.Name, r.Type, "value", r.Value)
		}
		if err != nil {
			return fmt.Errorf("obs: writing metrics CSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("obs: writing metrics CSV: %w", err)
	}
	return nil
}

func bucketLabel(le int64) string {
	if le == InfBucket {
		return "+inf"
	}
	return strconv.FormatInt(le, 10)
}
