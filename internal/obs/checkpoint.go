package obs

import "fmt"

// Restore overwrites the registry's metric values from a snapshot. Handles
// are never created here: every snapshot row must name a metric the restored
// scenario's construction already registered, because the set of rows depends
// only on which components were observed (see Snapshot) and a forked scenario
// is built from a superset of the captured one's components. Metrics the
// registry holds but the snapshot lacks — e.g. the fault counters of a forked
// member whose prefix ran fault-free — keep their construction value of zero,
// exactly what the from-scratch run would show at the checkpoint instant.
func (r *Registry) Restore(s Snapshot) error {
	for _, row := range s.Rows {
		switch row.Type {
		case "counter":
			c, ok := r.counters[row.Name]
			if !ok {
				return fmt.Errorf("obs: snapshot counter %q not in registry", row.Name)
			}
			c.v = row.Value
		case "gauge":
			g, ok := r.gauges[row.Name]
			if !ok {
				return fmt.Errorf("obs: snapshot gauge %q not in registry", row.Name)
			}
			g.v = row.Value
		case "histogram":
			h, ok := r.hists[row.Name]
			if !ok {
				return fmt.Errorf("obs: snapshot histogram %q not in registry", row.Name)
			}
			if len(row.Buckets) != len(h.bounds)+1 {
				return fmt.Errorf("obs: snapshot histogram %q has %d buckets, registry has %d",
					row.Name, len(row.Buckets), len(h.bounds)+1)
			}
			for i, b := range row.Buckets {
				var want int64 = InfBucket
				if i < len(h.bounds) {
					want = h.bounds[i]
				}
				if b.LE != want {
					return fmt.Errorf("obs: snapshot histogram %q bucket %d has bound %d, registry has %d",
						row.Name, i, b.LE, want)
				}
				h.counts[i] = b.Count
			}
			h.sum = row.Sum
			h.count = row.Count
			h.min = row.Min
			h.max = row.Max
		default:
			return fmt.Errorf("obs: snapshot row %q has unknown type %q", row.Name, row.Type)
		}
	}
	return nil
}
