// Package obs is the simulation's live observability layer: an event bus
// that streams trace.Events to subscribers as components emit them, plus a
// metrics registry of deterministic counters, gauges, and fixed-bucket
// histograms.
//
// Everything here is driven by virtual time and plain integers — no wall
// clock, no maps iterated in undefined order — so any snapshot or exported
// stream is byte-identical across runs and across worker counts.
//
// The layer is zero-overhead when disabled: a nil *Bus publishes to nobody,
// a Bus with no subscribers returns before touching the event, and nil
// metric handles (a component that was never Observe'd) make every Add and
// Observe a nil-check. None of these paths allocate.
package obs

import "satin/internal/trace"

// SinkFunc receives one published event. Sinks run synchronously on the
// publishing goroutine (the simulation is single-threaded), in subscription
// order.
type SinkFunc func(trace.Event)

type subscriber struct {
	id int
	fn SinkFunc
}

// Bus fans published trace.Events out to subscribers. The zero value and
// nil are both usable publishers (events go nowhere).
//
// Publish is re-entrancy safe: a sink may Subscribe or Unsubscribe (itself
// or a peer) while a publish is in flight. A subscriber removed mid-publish
// is not called again for the current event; a subscriber added mid-publish
// first sees the next event.
type Bus struct {
	subs   []subscriber
	nextID int
	// publishing counts in-flight Publish frames (sinks can publish
	// recursively); while non-zero, Unsubscribe tombstones instead of
	// splicing so the iteration indices stay stable.
	publishing int
	// dirty records that at least one tombstone awaits compaction.
	dirty bool
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn and returns a token for Unsubscribe. Subscribers
// are invoked in subscription order.
func (b *Bus) Subscribe(fn SinkFunc) int {
	b.nextID++
	b.subs = append(b.subs, subscriber{id: b.nextID, fn: fn})
	return b.nextID
}

// Unsubscribe removes the subscriber with the given token. Unknown tokens
// are a no-op. The relative order of the remaining subscribers is kept.
// During an in-flight Publish the entry is tombstoned (so the iteration's
// indices stay valid) and compacted away when the outermost publish ends.
func (b *Bus) Unsubscribe(id int) {
	for i, s := range b.subs {
		if s.id != id || s.fn == nil {
			continue
		}
		if b.publishing > 0 {
			b.subs[i].fn = nil
			b.dirty = true
		} else {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
		}
		return
	}
}

// Subscribers reports how many sinks are attached.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, s := range b.subs {
		if s.fn != nil {
			n++
		}
	}
	return n
}

// Publish delivers e to every subscriber in subscription order. It is safe
// on a nil bus and allocates nothing when no sink is attached.
//
// The subscriber list is index-guarded: only entries present when the
// publish started are delivered to (a Subscribe from inside a sink takes
// effect from the next event), and entries tombstoned by a mid-publish
// Unsubscribe are skipped without disturbing their neighbours.
func (b *Bus) Publish(e trace.Event) {
	if b == nil || len(b.subs) == 0 {
		return
	}
	b.publishing++
	n := len(b.subs)
	for i := 0; i < n; i++ {
		if fn := b.subs[i].fn; fn != nil {
			fn(e)
		}
	}
	b.publishing--
	if b.publishing == 0 && b.dirty {
		live := b.subs[:0]
		for _, s := range b.subs {
			if s.fn != nil {
				live = append(live, s)
			}
		}
		b.subs = live
		b.dirty = false
	}
}
