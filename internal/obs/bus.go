// Package obs is the simulation's live observability layer: an event bus
// that streams trace.Events to subscribers as components emit them, plus a
// metrics registry of deterministic counters, gauges, and fixed-bucket
// histograms.
//
// Everything here is driven by virtual time and plain integers — no wall
// clock, no maps iterated in undefined order — so any snapshot or exported
// stream is byte-identical across runs and across worker counts.
//
// The layer is zero-overhead when disabled: a nil *Bus publishes to nobody,
// a Bus with no subscribers returns before touching the event, and nil
// metric handles (a component that was never Observe'd) make every Add and
// Observe a nil-check. None of these paths allocate.
package obs

import "satin/internal/trace"

// SinkFunc receives one published event. Sinks run synchronously on the
// publishing goroutine (the simulation is single-threaded), in subscription
// order.
type SinkFunc func(trace.Event)

type subscriber struct {
	id int
	fn SinkFunc
}

// Bus fans published trace.Events out to subscribers. The zero value and
// nil are both usable publishers (events go nowhere).
type Bus struct {
	subs   []subscriber
	nextID int
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn and returns a token for Unsubscribe. Subscribers
// are invoked in subscription order.
func (b *Bus) Subscribe(fn SinkFunc) int {
	b.nextID++
	b.subs = append(b.subs, subscriber{id: b.nextID, fn: fn})
	return b.nextID
}

// Unsubscribe removes the subscriber with the given token. Unknown tokens
// are a no-op. The relative order of the remaining subscribers is kept.
func (b *Bus) Unsubscribe(id int) {
	for i, s := range b.subs {
		if s.id == id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Subscribers reports how many sinks are attached.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return len(b.subs)
}

// Publish delivers e to every subscriber in subscription order. It is safe
// on a nil bus and allocates nothing when no sink is attached.
func (b *Bus) Publish(e trace.Event) {
	if b == nil || len(b.subs) == 0 {
		return
	}
	for _, s := range b.subs {
		s.fn(e)
	}
}
