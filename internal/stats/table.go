package stats

import (
	"fmt"
	"strings"
)

// Sci formats v in the scientific notation the paper uses, e.g.
// "2.61e-04 s" for 2.61 × 10⁻⁴ s.
func Sci(v float64) string {
	return fmt.Sprintf("%.2e", v)
}

// SciSeconds formats a duration in seconds with the paper's notation and a
// unit suffix.
func SciSeconds(v float64) string {
	return Sci(v) + " s"
}

// Pct formats a ratio as a percentage with three decimals, matching the
// paper's overhead figures (e.g. "0.711%").
func Pct(ratio float64) string {
	return fmt.Sprintf("%.3f%%", ratio*100)
}

// Table renders fixed-width text tables for experiment output. Build one
// with NewTable, add rows, and render with String.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row. Rows shorter than the header are padded with empty
// cells; longer rows are a programming error and panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns and a separator under the
// header.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
