package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if !almostEq(s.Mean, 5) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if !almostEq(s.Std, 2) {
		t.Errorf("Std = %v, want 2", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almostEq(s.Mean, 2) || !almostEq(s.Min, 1) || !almostEq(s.Max, 3) {
		t.Errorf("SummarizeDurations = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); !almostEq(got, tc.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile of empty sample should be 0")
	}
	if Percentile([]float64{7}, 0.9) != 7 {
		t.Error("Percentile of singleton should be that value")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range p did not panic")
		}
	}()
	Percentile(xs, 1.5)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if !almostEq(b.Median, 5) {
		t.Errorf("Median = %v, want 5", b.Median)
	}
	if !almostEq(b.Q1, 3) || !almostEq(b.Q3, 7) {
		t.Errorf("Q1/Q3 = %v/%v, want 3/7", b.Q1, b.Q3)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("Outliers = %v, want none", b.Outliers)
	}
	if !almostEq(b.LowerWhisk, 1) || !almostEq(b.UpperWhisk, 9) {
		t.Errorf("whiskers = %v/%v, want 1/9", b.LowerWhisk, b.UpperWhisk)
	}
}

func TestBoxPlotWithOutlier(t *testing.T) {
	// 100 is far beyond Q3 + 1.5*IQR.
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.Max != 100 {
		t.Errorf("Max = %v, want 100", b.Max)
	}
	if b.UpperWhisk >= 100 {
		t.Errorf("UpperWhisk = %v, want < 100", b.UpperWhisk)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if b.N != 0 {
		t.Error("empty box plot should have N = 0")
	}
}

func TestBoxPlotProperties(t *testing.T) {
	// Properties: ordering of the five numbers, and whiskers+outliers
	// partition the sample.
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := NewBoxPlot(xs)
		ordered := b.Min <= b.LowerWhisk && b.LowerWhisk <= b.Q1 &&
			b.Q1 <= b.Median && b.Median <= b.Q3 &&
			b.Q3 <= b.UpperWhisk && b.UpperWhisk <= b.Max
		if !ordered {
			return false
		}
		// Every outlier lies strictly outside the whiskers.
		for _, o := range b.Outliers {
			if o >= b.LowerWhisk && o <= b.UpperWhisk {
				return false
			}
		}
		return b.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDist(t *testing.T) {
	d := NewDist([]float64{5, 1, 4, 2, 3})
	if d.N != 5 || d.Min != 1 || d.Max != 5 || !almostEq(d.Mean, 3) {
		t.Errorf("Summary part = %+v", d.Summary)
	}
	if !almostEq(d.P25, 2) || !almostEq(d.P50, 3) || !almostEq(d.P75, 4) || !almostEq(d.P90, 4.6) {
		t.Errorf("percentiles = %v/%v/%v/%v, want 2/3/4/4.6", d.P25, d.P50, d.P75, d.P90)
	}
}

func TestNewDistEmpty(t *testing.T) {
	if d := NewDist(nil); d != (Dist{}) {
		t.Errorf("NewDist(nil) = %+v, want zero", d)
	}
}

func TestNewDistDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewDist(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("NewDist mutated its input")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean([1 2 3]) != 2")
	}
}

func TestRelErr(t *testing.T) {
	if !almostEq(RelErr(110, 100), 0.1) {
		t.Error("RelErr(110, 100) != 0.1")
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0, 0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1, 0) != +Inf")
	}
}

func TestSciFormats(t *testing.T) {
	if got := Sci(2.61e-4); got != "2.61e-04" {
		t.Errorf("Sci = %q", got)
	}
	if got := SciSeconds(1.8e-3); got != "1.80e-03 s" {
		t.Errorf("SciSeconds = %q", got)
	}
	if got := Pct(0.00711); got != "0.711%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Core-Time", "Hash 1-Byte", "Snapshot 1-byte")
	tbl.AddRow("A53-Average", "1.07e-08 s", "1.08e-08 s")
	tbl.AddRow("A57-Average", "6.71e-09 s")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Core-Time") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator line = %q", lines[1])
	}
	// Columns align: "Hash 1-Byte" starts at the same offset in every row.
	col := strings.Index(lines[0], "Hash 1-Byte")
	if strings.Index(lines[2], "1.07e-08 s") != col {
		t.Errorf("data column misaligned:\n%s", out)
	}
}

func TestTableOverlongRowPanics(t *testing.T) {
	tbl := NewTable("a")
	defer func() {
		if recover() == nil {
			t.Error("overlong row did not panic")
		}
	}()
	tbl.AddRow("1", "2")
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		frac := func(p float64) float64 { return p - math.Floor(p) }
		a, b := frac(p1), frac(p2)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxPlotMatchesSortedSample(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6}
	b := NewBoxPlot(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if b.Min != sorted[0] || b.Max != sorted[len(sorted)-1] {
		t.Errorf("Min/Max = %v/%v, want %v/%v", b.Min, b.Max, sorted[0], sorted[len(sorted)-1])
	}
}
