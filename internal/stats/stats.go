// Package stats provides the summary statistics and text-table formatting
// used by every experiment in the SATIN reproduction: min/avg/max triples
// (the form of the paper's Tables I and II), five-number box-plot summaries
// with Tukey whiskers and outliers (the form of Figure 4), and fixed-width
// table rendering with the paper's scientific notation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the basic statistics of a sample.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Std  float64 // population standard deviation
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	return s
}

// SummarizeDurations converts ds to seconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty sample and
// panics if p is outside [0, 1].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 1]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted interpolates on an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is a five-number summary with Tukey whiskers: the whiskers extend
// to the most extreme data points within 1.5 IQR of the quartiles, and
// anything beyond is an outlier. This is the rendering convention of the
// paper's Figure 4.
type BoxPlot struct {
	Min        float64 // smallest observation (including outliers)
	LowerWhisk float64
	Q1         float64
	Median     float64
	Q3         float64
	UpperWhisk float64
	Max        float64 // largest observation (including outliers)
	Outliers   []float64
	N          int
}

// NewBoxPlot computes the box-plot summary of xs. An empty sample yields the
// zero BoxPlot.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	b := BoxPlot{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     percentileSorted(sorted, 0.25),
		Median: percentileSorted(sorted, 0.50),
		Q3:     percentileSorted(sorted, 0.75),
		N:      len(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowerWhisk = b.Q3
	b.UpperWhisk = b.Q1
	for _, x := range sorted {
		if x >= loFence && x <= hiFence {
			if x < b.LowerWhisk {
				b.LowerWhisk = x
			}
			if x > b.UpperWhisk {
				b.UpperWhisk = x
			}
		} else {
			b.Outliers = append(b.Outliers, x)
		}
	}
	// With interpolated quartiles, the most extreme in-fence data point can
	// sit inside the box (e.g. four points with one far outlier); whiskers
	// are conventionally drawn no shorter than the box edges.
	if b.UpperWhisk < b.Q3 {
		b.UpperWhisk = b.Q3
	}
	if b.LowerWhisk > b.Q1 {
		b.LowerWhisk = b.Q1
	}
	return b
}

// Dist is a Summary extended with the percentiles multi-seed sweeps report:
// detection/evasion rates and overheads are distributions over seeds, so a
// mean alone (the single-seed form of Tables I–II) is not enough to state
// the paper's claims with confidence.
type Dist struct {
	Summary
	P25 float64
	P50 float64
	P75 float64
	P90 float64
}

// NewDist computes the distribution summary of xs. An empty sample yields
// the zero Dist.
func NewDist(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Dist{
		Summary: Summarize(xs),
		P25:     percentileSorted(sorted, 0.25),
		P50:     percentileSorted(sorted, 0.50),
		P75:     percentileSorted(sorted, 0.75),
		P90:     percentileSorted(sorted, 0.90),
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// RelErr returns |got-want| / |want|. It reports 0 when both are zero and
// +Inf when only want is zero, so callers can threshold it directly.
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
