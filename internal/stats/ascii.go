package stats

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart: one row per label, bars
// scaled to the maximum value, the numeric value printed after each bar.
// Used to render Figure 7's per-benchmark degradation bars in a terminal.
func BarChart(labels []string, values []float64, width int, format func(float64) string) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("stats: BarChart with %d labels, %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 40
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	labelWidth := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var sb strings.Builder
	for i, l := range labels {
		n := 0
		if maxVal > 0 && values[i] > 0 {
			n = int(math.Round(values[i] / maxVal * float64(width)))
			if n == 0 {
				n = 1 // a nonzero value always shows at least a sliver
			}
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %s\n", labelWidth, l, width, strings.Repeat("#", n), format(values[i]))
	}
	return sb.String()
}

// BoxPlotChart renders ASCII box-and-whisker rows on a shared horizontal
// axis — the terminal rendering of Figure 4. Layout per row:
//
//	label |   |----[==|==]------|    o  o
//
// with '|'-capped whiskers, '[' Q1, '=' the interquartile box, '|' the
// median, ']' Q3, and 'o' outliers.
func BoxPlotChart(labels []string, boxes []BoxPlot, width int, format func(float64) string) string {
	if len(labels) != len(boxes) {
		panic(fmt.Sprintf("stats: BoxPlotChart with %d labels, %d boxes", len(labels), len(boxes)))
	}
	if width <= 0 {
		width = 60
	}
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		if b.N == 0 {
			continue
		}
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return "(no data)\n"
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var sb strings.Builder
	for i, b := range boxes {
		row := []byte(strings.Repeat(" ", width))
		if b.N > 0 {
			for p := pos(b.LowerWhisk); p <= pos(b.UpperWhisk); p++ {
				row[p] = '-'
			}
			for p := pos(b.Q1); p <= pos(b.Q3); p++ {
				row[p] = '='
			}
			row[pos(b.LowerWhisk)] = '|'
			row[pos(b.UpperWhisk)] = '|'
			row[pos(b.Q1)] = '['
			row[pos(b.Q3)] = ']'
			row[pos(b.Median)] = '|'
			for _, o := range b.Outliers {
				row[pos(o)] = 'o'
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s| median %s\n", labelWidth, labels[i], string(row), format(b.Median))
	}
	fmt.Fprintf(&sb, "%-*s  %s%s\n", labelWidth, "", format(lo), strings.Repeat(" ", max(1, width-len(format(lo))-len(format(hi))))+format(hi))
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
