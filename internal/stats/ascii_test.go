package stats

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart(
		[]string{"dhrystone", "file_copy_256B"},
		[]float64{0.001, 0.035},
		20,
		func(v float64) string { return Pct(v) },
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The big bar fills the width; the small one still shows a sliver.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "#") {
		t.Errorf("nonzero value shows no bar: %q", lines[0])
	}
	if !strings.Contains(lines[0], "0.100%") || !strings.Contains(lines[1], "3.500%") {
		t.Errorf("values missing:\n%s", out)
	}
	// Labels align.
	if strings.Index(lines[0], "|") != strings.Index(lines[1], "|") {
		t.Error("bars misaligned")
	}
}

func TestBarChartZeroAndDefaults(t *testing.T) {
	out := BarChart([]string{"a"}, []float64{0}, 0, nil)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar: %q", out)
	}
}

func TestBarChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	BarChart([]string{"a"}, []float64{1, 2}, 10, nil)
}

func TestBoxPlotChart(t *testing.T) {
	b1 := NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	b2 := NewBoxPlot([]float64{2, 3, 4, 5, 6, 7, 8, 9, 30}) // 30 is an outlier
	out := BoxPlotChart([]string{"8s", "300s"}, []BoxPlot{b1, b2}, 40, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two rows plus the axis line
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, marker := range []string{"[", "]", "=", "-"} {
		if !strings.Contains(lines[0], marker) {
			t.Errorf("row missing %q: %q", marker, lines[0])
		}
	}
	if !strings.Contains(lines[1], "o") {
		t.Errorf("outlier marker missing: %q", lines[1])
	}
	if !strings.Contains(lines[0], "median") {
		t.Error("median annotation missing")
	}
	// Axis shows the global range.
	if !strings.Contains(lines[2], "1") || !strings.Contains(lines[2], "30") {
		t.Errorf("axis line = %q", lines[2])
	}
}

func TestBoxPlotChartEmpty(t *testing.T) {
	out := BoxPlotChart([]string{"x"}, []BoxPlot{{}}, 40, nil)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestBoxPlotChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	BoxPlotChart([]string{"a", "b"}, []BoxPlot{{}}, 10, nil)
}
