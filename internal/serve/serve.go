// Package serve is the cross-process half of the campaign engine: a
// long-lived HTTP/JSON server that accepts campaign specs, partitions each
// into shards (internal/shard — checkpoint-key groups stay intact, so fork
// acceleration applies within a shard exactly as in one process), leases
// shards to pull-based workers with an expiry so a dead worker's shard is
// reassigned, streams per-cell progress as the same trace.KindCell events
// the in-process executor publishes, and merges the uploaded per-shard
// result files into one finalized file whose bytes are identical to a
// single-process campaign.Run — for any shard count and any lease or kill
// history (campaign.Merge carries that invariant; the server only
// orchestrates).
//
// The package is deliberately split along trust lines: Server holds all
// state under one lock and is pure orchestration (no simulation imports),
// Client is the typed wire interface, and RunWorker is the lease → execute
// → upload loop both `satin-serve -worker` and `benchtables
// -campaign-worker` run. Workers execute their shard with campaign.Run
// (RunOptions.Only), so kill/resume inside a shard works exactly like any
// campaign session.
package serve

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"satin/internal/campaign"
	"satin/internal/obs"
	"satin/internal/shard"
	"satin/internal/telemetry"
	"satin/internal/trace"
)

// Shard lifecycle states.
const (
	// StatePending: never leased, or the last lease expired and was
	// reclaimed by a later lease scan.
	StatePending = "pending"
	// StateLeased: a worker holds the shard; renewed by progress reports.
	StateLeased = "leased"
	// StateDone: the shard's result file was uploaded and verified.
	StateDone = "done"
)

// DefaultLeaseTTL is the lease expiry when Options does not set one. A
// lease renews on every progress report (one per completed cell), so the
// TTL only needs to outlast the slowest single cell, not a whole shard.
const DefaultLeaseTTL = 60 * time.Second

// Options configures a Server.
type Options struct {
	// DataDir is where uploaded shard files and merged results live.
	DataDir string
	// LeaseTTL is the shard lease expiry (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Now is the clock (default time.Now). Injected for lease-expiry tests.
	Now func() time.Time
	// GroupKey, when non-nil, keeps checkpoint-key groups intact within a
	// shard (satin.CheckpointGroupKey in the binaries — injected because
	// this package must not import the facade).
	GroupKey campaign.GroupKeyFunc
	// Bus, when non-nil, receives every progress event the server accepts,
	// for in-process taps; HTTP event streams work without it.
	Bus *obs.Bus
	// Logger, when non-nil, receives structured protocol logs (lease
	// grants, expiries, stale rejections, uploads, merges) with job/shard/
	// worker/token fields. Nil means silent.
	Logger *slog.Logger
}

// Server owns the campaign jobs. All state lives under one mutex; handlers
// and the lease scan are short critical sections, and uploads verify the
// shard file bytes before taking the lock.
type Server struct {
	opt Options
	log *slog.Logger
	tel *serverTelemetry

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order: the lease scan walks oldest-first
	next  int
}

// job is one submitted campaign.
type job struct {
	id        string
	name      string
	spec      campaign.Spec
	specBytes []byte // canonical marshal — the campaign's identity
	cells     []campaign.Cell
	plan      shard.Plan
	shards    []*shardState
	dir       string

	// events is the per-cell progress log (trace.KindCell, Area = cell
	// index), appended as workers report; notify is closed and replaced on
	// every append or state change so streamers wake without polling.
	events []trace.Event
	notify chan struct{}

	// doneCells tracks cells reported complete (progress) or covered by a
	// verified upload; len is the job-wide done count in Status.
	doneCells map[int]bool

	finalized  bool
	mergeError string
	resultPath string

	// Wall-clock telemetry record (side channel — derived, never consulted
	// by the protocol, and absent from every result byte).
	submitted   time.Time
	finalizedAt time.Time
	cellTimes   []telemetry.CellTiming
	spans       []telemetry.Span
}

// shardState is one shard's lease lifecycle.
type shardState struct {
	state  string
	token  string
	worker string
	expiry time.Time
	path   string // verified upload, set when done

	// Wall-clock telemetry record (side channel, like job's).
	leases     int
	activeNs   time.Duration
	idleNs     time.Duration
	idleSince  time.Time // when the shard last became leasable
	leaseStart time.Time // current lease's grant instant
	lastMark   time.Time // previous cell-arrival boundary within the lease
}

// New builds a Server. DataDir must exist or be creatable.
func New(opt Options) (*Server, error) {
	if opt.DataDir == "" {
		return nil, fmt.Errorf("serve: Options.DataDir is required")
	}
	if err := os.MkdirAll(opt.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = DefaultLeaseTTL
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	log := opt.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	return &Server{
		opt:  opt,
		log:  log,
		tel:  newServerTelemetry(opt.Now()),
		jobs: map[string]*job{},
	}, nil
}

// Submit registers a campaign split into `shards` shards and returns its
// status. The campaign is canonicalized first — the job's identity is the
// canonical form, exactly as in result files. Submitting a campaign whose
// canonical bytes and shard count match an existing unfinished job returns
// that job instead of forking a duplicate (so a retried submit is
// idempotent).
func (s *Server) Submit(campaignJSON []byte, shards int) (JobStatus, error) {
	c, err := campaign.Parse(campaignJSON)
	if err != nil {
		return JobStatus{}, badRequest(err)
	}
	canon, err := campaign.Canonicalize(c)
	if err != nil {
		return JobStatus{}, badRequest(err)
	}
	specBytes, err := campaign.Marshal(canon)
	if err != nil {
		return JobStatus{}, err
	}
	cells, err := campaign.Cells(canon)
	if err != nil {
		return JobStatus{}, badRequest(err)
	}
	if shards < 1 {
		return JobStatus{}, badRequest(fmt.Errorf("serve: shard count %d: need at least 1", shards))
	}
	plan, err := shard.PlanCells(cells, shards, s.opt.GroupKey)
	if err != nil {
		return JobStatus{}, badRequest(err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.finalized && j.plan.Count() == shards && string(j.specBytes) == string(specBytes) {
			return s.statusLocked(j), nil
		}
	}
	s.next++
	now := s.opt.Now()
	j := &job{
		id:        fmt.Sprintf("c%d", s.next),
		name:      canon.Name,
		spec:      canon,
		specBytes: specBytes,
		cells:     cells,
		plan:      plan,
		dir:       filepath.Join(s.opt.DataDir, fmt.Sprintf("job-c%d", s.next)),
		notify:    make(chan struct{}),
		doneCells: map[int]bool{},
		submitted: now,
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return JobStatus{}, fmt.Errorf("serve: job dir: %w", err)
	}
	j.resultPath = filepath.Join(j.dir, "merged.result")
	for range j.plan.Shards {
		j.shards = append(j.shards, &shardState{state: StatePending, idleSince: now})
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.jobTelemetryInit(j)
	s.log.Info("job submitted", "job", j.id, "name", j.name,
		"cells", len(j.cells), "shards", len(j.shards))
	return s.statusLocked(j), nil
}

// Lease hands one leasable shard to a worker: the oldest job's lowest
// pending shard, where "pending" includes leases whose expiry has passed
// (the dead-worker reassignment). The second return reports whether any
// job still has unfinished shards at all — false tells an idle worker to
// exit rather than poll.
func (s *Server) Lease(worker string) (*Lease, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opt.Now()
	open := false
	for _, id := range s.order {
		j := s.jobs[id]
		if j.finalized {
			continue
		}
		for si, st := range j.shards {
			if st.state == StateDone {
				continue
			}
			open = true
			if st.state == StateLeased && now.Before(st.expiry) {
				continue
			}
			if st.state == StateLeased {
				// The previous lease ran out its TTL: reclaim it, closing its
				// interval at the expiry instant (the last moment we believed
				// in the worker).
				s.tel.leasesExpired.Inc()
				s.closeLeaseSpanLocked(j, si, st, st.expiry, true)
				s.log.Warn("lease expired", "job", j.id, "shard", si,
					"worker", st.worker, "token", st.token)
			}
			s.next++
			if !st.idleSince.IsZero() && now.After(st.idleSince) {
				st.idleNs += now.Sub(st.idleSince)
			}
			st.state = StateLeased
			st.token = fmt.Sprintf("l%d", s.next)
			st.worker = worker
			st.expiry = now.Add(s.opt.LeaseTTL)
			st.leases++
			st.leaseStart = now
			st.lastMark = now
			s.tel.leasesGranted.Inc()
			s.log.Info("lease granted", "job", j.id, "shard", si,
				"worker", worker, "token", st.token, "cells", len(j.plan.Shards[si]))
			j.changed()
			return &Lease{
				Job:      j.id,
				Shard:    si,
				Token:    st.token,
				TTLMs:    s.opt.LeaseTTL.Milliseconds(),
				Cells:    append([]int(nil), j.plan.Shards[si]...),
				Campaign: append([]byte(nil), j.specBytes...),
			}, true, nil
		}
	}
	return nil, open, nil
}

// Progress records one completed cell from a shard worker and renews its
// lease. The report's event is appended to the job's stream (and the
// server bus, when configured) exactly as the in-process executor would
// have published it. The report's wall-clock fields (CellNs, Forked) feed
// telemetry only — the protocol ignores them.
func (s *Server) Progress(jobID string, shardIdx int, rep ProgressReport) error {
	s.mu.Lock()
	j, st, err := s.shardLocked(jobID, shardIdx)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if st.state != StateLeased || st.token != rep.Token {
		s.tel.staleRejections.Inc()
		s.log.Warn("stale progress report", "job", jobID, "shard", shardIdx,
			"token", rep.Token, "cell", rep.Index)
		s.mu.Unlock()
		return leaseLost(jobID, shardIdx)
	}
	index, detail := rep.Index, rep.Detail
	if index < 0 || index >= len(j.cells) {
		s.mu.Unlock()
		return badRequest(fmt.Errorf("serve: progress for cell %d of %d", index, len(j.cells)))
	}
	now := s.opt.Now()
	st.expiry = now.Add(s.opt.LeaseTTL)
	e := trace.Event{Kind: trace.KindCell, Core: -1, Area: index, Detail: detail}
	j.events = append(j.events, e)
	j.doneCells[index] = true

	// Telemetry. The cell's timeline span is the arrival interval on the
	// shard's track ([lastMark, now] — sequential by construction, since
	// reports append under s.mu), not the worker-reported duration, which
	// overlaps under in-worker parallelism and belongs in the histogram.
	s.tel.leasesRenewed.Inc()
	s.tel.reg.Counter("satin_cells_reported_total", "", "job", j.id).Inc()
	if rep.Forked {
		s.tel.reg.Counter("satin_cells_forked_total", "", "job", j.id).Inc()
	}
	if rep.CellNs > 0 {
		sec := float64(rep.CellNs) / float64(time.Second)
		s.tel.reg.Histogram("satin_cell_duration_seconds", "", cellDurationBounds,
			"job", j.id, "shard", fmt.Sprintf("%d", shardIdx)).Observe(sec)
		j.cellTimes = append(j.cellTimes, telemetry.CellTiming{
			Index: index, Shard: shardIdx,
			Ms: float64(rep.CellNs) / float64(time.Millisecond),
		})
	}
	j.spans = append(j.spans, telemetry.Span{
		Process: "job " + j.id,
		Thread:  fmt.Sprintf("shard %d", shardIdx),
		Name:    fmt.Sprintf("cell %d", index),
		Detail:  detail,
		Begin:   st.lastMark.Sub(s.tel.t0),
		End:     now.Sub(s.tel.t0),
	})
	st.lastMark = now
	s.jobProgressMetricsLocked(j, now)
	s.log.Debug("cell reported", "job", j.id, "shard", shardIdx,
		"worker", st.worker, "token", rep.Token, "cell", index)

	j.changed()
	bus := s.opt.Bus
	s.mu.Unlock()
	// The in-process tap runs outside the lock: a slow sink must not stall
	// lease handouts.
	bus.Publish(e)
	return nil
}

// Upload accepts a shard's result file. The bytes are verified before any
// state changes: the embedded campaign must match the job's canonical form
// and the records must cover every cell of the shard's plan (a superset
// from an earlier partial lease of the same worker is fine — merge
// tolerates identical duplicates). When the last shard lands, the server
// merges all shard files into the finalized result.
func (s *Server) Upload(jobID string, shardIdx int, token string, data []byte) error {
	specBytes, results, _, parseErr := campaign.ReadFile(data)

	s.mu.Lock()
	j, st, err := s.shardLocked(jobID, shardIdx)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	// A dead lease outranks a bad payload: the worker's actionable signal
	// is "drop this shard", whatever it tried to send.
	if st.state != StateLeased || st.token != token {
		s.tel.staleRejections.Inc()
		s.log.Warn("stale upload", "job", jobID, "shard", shardIdx, "token", token)
		s.mu.Unlock()
		return leaseLost(jobID, shardIdx)
	}
	rejected := func(err error) error {
		s.tel.uploadsRejected.Inc()
		s.log.Warn("upload rejected", "job", jobID, "shard", shardIdx,
			"worker", st.worker, "token", token, "error", err.Error())
		s.mu.Unlock()
		return badRequest(err)
	}
	if parseErr != nil {
		return rejected(fmt.Errorf("serve: shard upload: %w", parseErr))
	}
	if string(specBytes) != string(j.specBytes) {
		return rejected(fmt.Errorf("serve: shard upload embeds a different campaign"))
	}
	have := map[int]bool{}
	for _, r := range results {
		have[r.Index] = true
	}
	for _, idx := range j.plan.Shards[shardIdx] {
		if !have[idx] {
			return rejected(fmt.Errorf("serve: shard %d upload is missing cell %d", shardIdx, idx))
		}
	}
	path := filepath.Join(j.dir, fmt.Sprintf("shard-%d.result", shardIdx))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: storing shard: %w", err)
	}
	now := s.opt.Now()
	s.tel.uploadsVerified.Inc()
	s.closeLeaseSpanLocked(j, shardIdx, st, now, false)
	s.log.Info("upload verified", "job", j.id, "shard", shardIdx,
		"worker", st.worker, "token", token, "cells", len(results))
	st.state = StateDone
	st.path = path
	for _, r := range results {
		j.doneCells[r.Index] = true
	}
	allDone := true
	var shardFiles []string
	for _, other := range j.shards {
		if other.state != StateDone {
			allDone = false
			break
		}
		shardFiles = append(shardFiles, other.path)
	}
	if allDone {
		mergeErr := func() error { _, err := campaign.Merge(j.resultPath, shardFiles...); return err }()
		mergeEnd := s.opt.Now()
		if mergeErr != nil {
			j.mergeError = mergeErr.Error()
			s.tel.mergesError.Inc()
			s.log.Error("merge failed", "job", j.id, "error", mergeErr.Error())
		} else {
			j.finalized = true
			j.finalizedAt = mergeEnd
			s.tel.mergesOK.Inc()
			s.log.Info("job finalized", "job", j.id, "cells", len(j.cells))
		}
		detail := "ok"
		if j.mergeError != "" {
			detail = j.mergeError
		}
		j.spans = append(j.spans, telemetry.Span{
			Process: "job " + j.id,
			Thread:  "merge",
			Name:    "merge",
			Detail:  detail,
			Begin:   now.Sub(s.tel.t0),
			End:     mergeEnd.Sub(s.tel.t0),
		})
	}
	s.jobProgressMetricsLocked(j, now)
	j.changed()
	s.mu.Unlock()
	return nil
}

// Status reports one job.
func (s *Server) Status(jobID string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return JobStatus{}, notFound(jobID)
	}
	return s.statusLocked(j), nil
}

// List reports every job in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobStatus
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Result returns the finalized merged result bytes.
func (s *Server) Result(jobID string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return nil, notFound(jobID)
	}
	if !j.finalized {
		s.mu.Unlock()
		return nil, notReady(jobID)
	}
	path := j.resultPath
	s.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading merged result: %w", err)
	}
	return data, nil
}

// EventsSince returns the progress events from index `from` on, plus a
// channel that closes on the next change and whether the job is finished
// (finalized, or wedged on a merge error). Streamers loop: drain, write,
// wait on the channel.
func (s *Server) EventsSince(jobID string, from int) (events []trace.Event, changed <-chan struct{}, finished bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, nil, false, notFound(jobID)
	}
	if from < 0 {
		from = 0
	}
	if from < len(j.events) {
		events = append(events, j.events[from:]...)
	}
	return events, j.notify, j.finalized || j.mergeError != "", nil
}

// statusLocked renders a job's status; callers hold s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	now := s.opt.Now()
	st := JobStatus{
		ID:         j.id,
		Name:       j.name,
		Cells:      len(j.cells),
		Done:       len(j.doneCells),
		Finalized:  j.finalized,
		MergeError: j.mergeError,
	}
	for si, sh := range j.shards {
		state := sh.state
		if state == StateLeased && !now.Before(sh.expiry) {
			// An expired lease is pending again in every way that matters;
			// report it that way so status never shows a phantom worker.
			state = StatePending
		}
		st.Shards = append(st.Shards, ShardStatus{
			Shard:  si,
			Cells:  len(j.plan.Shards[si]),
			State:  state,
			Worker: sh.worker,
		})
	}
	st.Stragglers = s.stragglersLocked(j, now)
	return st
}

// shardLocked resolves a (job, shard) pair; callers hold s.mu.
func (s *Server) shardLocked(jobID string, shardIdx int) (*job, *shardState, error) {
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, nil, notFound(jobID)
	}
	if shardIdx < 0 || shardIdx >= len(j.shards) {
		return nil, nil, badRequest(fmt.Errorf("serve: job %s has no shard %d", jobID, shardIdx))
	}
	return j, j.shards[shardIdx], nil
}

// changed wakes every waiter on the job's notify channel.
func (j *job) changed() {
	close(j.notify)
	j.notify = make(chan struct{})
}
