package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"satin/internal/campaign"
	"satin/internal/obs"
	"satin/internal/telemetry"
	"satin/internal/trace"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker in leases and status output.
	Name string
	// Dir holds the per-shard result files. Keyed by job and shard, so a
	// worker that re-leases a shard it half-finished resumes its own
	// checkpoint instead of starting over.
	Dir string
	// Trial executes scenario cells (satin.RunSpecTrial in the binaries).
	Trial campaign.SpecTrialFunc
	// GroupKey and GroupTrial, when both non-nil, enable checkpoint-fork
	// acceleration within the shard (the planner kept groups intact).
	GroupKey   campaign.GroupKeyFunc
	GroupTrial campaign.GroupTrialFunc
	// Workers bounds the in-process pool per shard (0 = GOMAXPROCS).
	Workers int
	// Poll is the idle wait between lease attempts while jobs are still in
	// flight elsewhere (default 150ms).
	Poll time.Duration
	// Logger, when non-nil, receives structured lease/upload transitions
	// with worker/job/shard/token fields. Nil means silent.
	Logger *slog.Logger
}

// RunWorker is the pull loop both `satin-serve -worker` and `benchtables
// -campaign-worker` run: lease a shard, execute it with campaign.Run
// restricted to the shard's cells (posting one progress report per
// completed cell — which is also the lease renewal), upload the shard's
// result file, repeat. It returns nil when the server reports no open work
// left, and keeps going across lost leases (another worker inherited the
// shard — the deterministic cells make any overlap merge-compatible).
func RunWorker(ctx context.Context, client *Client, opt WorkerOptions) error {
	if opt.Poll <= 0 {
		opt.Poll = 150 * time.Millisecond
	}
	if opt.Dir == "" {
		return fmt.Errorf("serve: worker needs a scratch dir")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return fmt.Errorf("serve: worker dir: %w", err)
	}
	if opt.Logger == nil {
		opt.Logger = telemetry.NopLogger()
	}
	log := opt.Logger.With("worker", opt.Name)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, open, err := client.Lease(ctx, opt.Name)
		if err != nil {
			return fmt.Errorf("serve: leasing: %w", err)
		}
		if lease == nil {
			if !open {
				log.Info("no work left, exiting")
				return nil
			}
			select {
			case <-time.After(opt.Poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		log.Info("leased shard", "job", lease.Job, "shard", lease.Shard,
			"token", lease.Token, "cells", len(lease.Cells))
		if err := runLease(ctx, client, opt, lease); err != nil {
			if errors.Is(err, ErrLeaseLost) {
				// The server reassigned the shard (our lease expired, or a
				// peer finished it). Drop it and pull the next one.
				log.Warn("lost lease", "job", lease.Job, "shard", lease.Shard,
					"token", lease.Token)
				continue
			}
			return err
		}
		log.Info("uploaded shard", "job", lease.Job, "shard", lease.Shard,
			"token", lease.Token)
	}
}

// runLease executes one leased shard end to end.
func runLease(ctx context.Context, client *Client, opt WorkerOptions, lease *Lease) error {
	c, err := campaign.Parse(lease.Campaign)
	if err != nil {
		return fmt.Errorf("serve: leased campaign: %w", err)
	}

	// A lost lease cancels the shard run: there is no point finishing cells
	// the server will take from someone else, and the checkpoint keeps what
	// was done in case the shard comes back to us.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost bool
	// Wall-clock cell stats, stashed by the CellDone hook and attached to
	// the progress report the bus subscriber sends anyway. CellDone for a
	// cell runs before its bus publish (same goroutine), so the lookup
	// always hits.
	type cellStat struct {
		wall   time.Duration
		forked bool
	}
	var statMu sync.Mutex
	stats := map[int]cellStat{}
	bus := obs.NewBus()
	bus.Subscribe(func(e trace.Event) {
		if e.Kind != trace.KindCell || lost {
			return
		}
		statMu.Lock()
		stat := stats[e.Area]
		statMu.Unlock()
		rep := ProgressReport{
			Token:  lease.Token,
			Index:  e.Area,
			Detail: e.Detail,
			CellNs: stat.wall.Nanoseconds(),
			Forked: stat.forked,
		}
		if err := client.Progress(ctx, lease.Job, lease.Shard, rep); err != nil {
			if errors.Is(err, ErrLeaseLost) {
				lost = true
				cancel()
			}
			// Other report failures are tolerable: progress is advisory and
			// the lease has TTLs worth of slack; the upload is the real
			// commit point.
		}
	})

	path := filepath.Join(opt.Dir, fmt.Sprintf("%s-shard-%d.result", lease.Job, lease.Shard))
	_, err = campaign.Run(runCtx, c, path, campaign.RunOptions{
		Workers:    opt.Workers,
		Only:       append([]int(nil), lease.Cells...),
		Bus:        bus,
		SpecTrial:  opt.Trial,
		GroupKey:   opt.GroupKey,
		GroupTrial: opt.GroupTrial,
		CellDone: func(index int, wall time.Duration, forked bool) {
			statMu.Lock()
			stats[index] = cellStat{wall: wall, forked: forked}
			statMu.Unlock()
		},
	})
	if lost {
		return fmt.Errorf("%w: while running job %s shard %d", ErrLeaseLost, lease.Job, lease.Shard)
	}
	if err != nil {
		return fmt.Errorf("serve: running shard: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: reading shard result: %w", err)
	}
	return client.Upload(ctx, lease.Job, lease.Shard, lease.Token, data)
}
