package serve

import (
	"fmt"
	"time"

	"satin/internal/telemetry"
)

// telemetry.go is the server's wall-clock observability side channel: every
// protocol transition (lease granted/expired/renewed, stale rejection,
// upload verified/rejected, merge) feeds Prometheus-style metrics, a
// Chrome-trace campaign timeline, and the straggler report. None of it may
// influence the campaign protocol or the finalized result bytes — the
// fields live next to the protocol state but are written strictly after
// protocol decisions, and everything here is derived, never consulted.

// Histogram bounds, in seconds.
var (
	cellDurationBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}
	httpDurationBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}
)

// serverTelemetry holds the registry plus the static (label-less) handles,
// registered eagerly at New so every family appears in /metrics from the
// first scrape — a fleet dashboard must not miss a counter merely because
// nothing bad has happened yet.
type serverTelemetry struct {
	reg *telemetry.Registry
	// t0 is the timeline zero: every exported span is an offset from the
	// server's start.
	t0 time.Time

	leasesGranted   *telemetry.Counter
	leasesExpired   *telemetry.Counter
	leasesRenewed   *telemetry.Counter
	staleRejections *telemetry.Counter
	uploadsVerified *telemetry.Counter
	uploadsRejected *telemetry.Counter
	mergesOK        *telemetry.Counter
	mergesError     *telemetry.Counter
}

func newServerTelemetry(t0 time.Time) *serverTelemetry {
	reg := telemetry.NewRegistry()
	return &serverTelemetry{
		reg: reg,
		t0:  t0,
		leasesGranted: reg.Counter("satin_leases_granted_total",
			"Shard leases handed to workers, including re-leases."),
		leasesExpired: reg.Counter("satin_leases_expired_total",
			"Leases reclaimed after their TTL passed without a progress report."),
		leasesRenewed: reg.Counter("satin_leases_renewed_total",
			"Lease renewals (one per accepted progress report)."),
		staleRejections: reg.Counter("satin_lease_stale_rejections_total",
			"Progress reports or uploads rejected because the lease token was stale."),
		uploadsVerified: reg.Counter("satin_uploads_verified_total",
			"Shard result uploads that passed verification and were stored."),
		uploadsRejected: reg.Counter("satin_uploads_rejected_total",
			"Shard result uploads rejected on verification (bad payload)."),
		mergesOK: reg.Counter("satin_merges_total",
			"Campaign merges by outcome.", "outcome", "ok"),
		mergesError: reg.Counter("satin_merges_total",
			"Campaign merges by outcome.", "outcome", "error"),
	}
}

// Metrics exposes the server's telemetry registry (the /metrics source).
func (s *Server) Metrics() *telemetry.Registry { return s.tel.reg }

// jobTelemetryInit pre-registers the per-job metric families at submit time
// so a scrape sees the job's series (at zero) before the first worker
// reports. Callers hold s.mu.
func (s *Server) jobTelemetryInit(j *job) {
	reg := s.tel.reg
	reg.Gauge("satin_job_cells_total", "Cells in the campaign's expansion.",
		"job", j.id).Set(float64(len(j.cells)))
	reg.Gauge("satin_job_cells_done", "Cells completed so far.", "job", j.id)
	reg.Gauge("satin_job_cells_per_second",
		"Job-wide completion throughput since submit (wall clock).", "job", j.id)
	reg.Counter("satin_cells_reported_total",
		"Per-cell progress reports accepted.", "job", j.id)
	reg.Counter("satin_cells_forked_total",
		"Reported cells that ran inside a checkpoint-fork group.", "job", j.id)
	for si := range j.shards {
		reg.Histogram("satin_cell_duration_seconds",
			"Worker-reported wall-clock cell durations.", cellDurationBounds,
			"job", j.id, "shard", fmt.Sprintf("%d", si))
	}
}

// jobProgressMetricsLocked refreshes the job-level gauges after doneCells
// changed. Callers hold s.mu.
func (s *Server) jobProgressMetricsLocked(j *job, now time.Time) {
	s.tel.reg.Gauge("satin_job_cells_done", "", "job", j.id).Set(float64(len(j.doneCells)))
	if elapsed := now.Sub(j.submitted).Seconds(); elapsed > 0 {
		s.tel.reg.Gauge("satin_job_cells_per_second", "", "job", j.id).
			Set(float64(len(j.doneCells)) / elapsed)
	}
}

// closeLeaseSpanLocked ends a shard's open lease interval at `end` and
// accounts its active time; the shard is idle from `end` until the next
// grant. Callers hold s.mu.
func (s *Server) closeLeaseSpanLocked(j *job, si int, st *shardState, end time.Time, expired bool) {
	name := fmt.Sprintf("lease %s", st.token)
	detail := fmt.Sprintf("worker %s", st.worker)
	if expired {
		detail += " (expired)"
	}
	j.spans = append(j.spans, telemetry.Span{
		Process: "job " + j.id,
		Thread:  fmt.Sprintf("shard %d", si),
		Name:    name,
		Detail:  detail,
		Begin:   st.leaseStart.Sub(s.tel.t0),
		End:     end.Sub(s.tel.t0),
	})
	st.activeNs += end.Sub(st.leaseStart)
	st.idleSince = end
}

// stragglersLocked folds the job's wall-clock record into a straggler
// report, including in-flight lease/idle time up to `now`. Callers hold
// s.mu. Returns nil when nothing has been timed yet.
func (s *Server) stragglersLocked(j *job, now time.Time) *telemetry.StragglerReport {
	var shards []telemetry.ShardTiming
	any := false
	for si, st := range j.shards {
		t := telemetry.ShardTiming{
			Shard:    si,
			Leases:   st.leases,
			ActiveMs: float64(st.activeNs) / float64(time.Millisecond),
			IdleMs:   float64(st.idleNs) / float64(time.Millisecond),
			Done:     st.state == StateDone,
		}
		switch {
		case st.state == StateLeased && now.Before(st.expiry):
			t.ActiveMs += float64(now.Sub(st.leaseStart)) / float64(time.Millisecond)
		case st.state != StateDone && !st.idleSince.IsZero():
			// Pending (or expired-but-unreclaimed) shards accrue idle live.
			idleFrom := st.idleSince
			if st.state == StateLeased {
				t.ActiveMs += float64(st.expiry.Sub(st.leaseStart)) / float64(time.Millisecond)
				idleFrom = st.expiry
			}
			if now.After(idleFrom) {
				t.IdleMs += float64(now.Sub(idleFrom)) / float64(time.Millisecond)
			}
		}
		if st.leases > 0 || t.IdleMs > 0 || t.ActiveMs > 0 {
			any = true
		}
		shards = append(shards, t)
	}
	if !any && len(j.cellTimes) == 0 {
		return nil
	}
	return telemetry.BuildStragglerReport(j.cellTimes, shards, 5)
}

// Timeline renders one job's wall-clock history as spans ready for
// telemetry.WriteChromeTrace: the job-lifetime span, every closed lease and
// cell interval, the merge, and any still-open lease clamped at now.
func (s *Server) Timeline(jobID string) ([]telemetry.Span, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, notFound(jobID)
	}
	now := s.opt.Now()
	jobEnd, open := now, true
	if !j.finalizedAt.IsZero() {
		jobEnd, open = j.finalizedAt, false
	}
	spans := []telemetry.Span{{
		Process: "job " + j.id,
		Thread:  "job",
		Name:    "job " + j.id,
		Detail:  j.name,
		Begin:   j.submitted.Sub(s.tel.t0),
		End:     jobEnd.Sub(s.tel.t0),
		Open:    open,
	}}
	spans = append(spans, j.spans...)
	for si, st := range j.shards {
		if st.state != StateLeased {
			continue
		}
		end := now
		if !now.Before(st.expiry) {
			end = st.expiry
		}
		spans = append(spans, telemetry.Span{
			Process: "job " + j.id,
			Thread:  fmt.Sprintf("shard %d", si),
			Name:    fmt.Sprintf("lease %s", st.token),
			Detail:  fmt.Sprintf("worker %s", st.worker),
			Begin:   st.leaseStart.Sub(s.tel.t0),
			End:     end.Sub(s.tel.t0),
			Open:    true,
		})
	}
	return spans, nil
}
