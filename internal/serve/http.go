package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"satin/internal/trace"
)

// Wire types. The campaign travels as its canonical JSON — the same bytes
// the result-file header embeds — so workers and the server agree on the
// expansion by construction.

// SubmitRequest is the POST /v1/campaigns body.
type SubmitRequest struct {
	Campaign json.RawMessage `json:"campaign"`
	Shards   int             `json:"shards"`
}

// JobStatus is one job's public state.
type JobStatus struct {
	ID         string        `json:"id"`
	Name       string        `json:"name,omitempty"`
	Cells      int           `json:"cells"`
	Done       int           `json:"done"`
	Shards     []ShardStatus `json:"shards"`
	Finalized  bool          `json:"finalized"`
	MergeError string        `json:"merge_error,omitempty"`
}

// ShardStatus is one shard's public state.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Cells  int    `json:"cells"`
	State  string `json:"state"`
	Worker string `json:"worker,omitempty"`
}

// Lease is one shard handout.
type Lease struct {
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	Token string `json:"token"`
	TTLMs int64  `json:"ttl_ms"`
	// Cells are the campaign cell indices this shard executes.
	Cells []int `json:"cells"`
	// Campaign is the canonical campaign JSON.
	Campaign json.RawMessage `json:"campaign"`
}

// LeaseResponse is the POST /v1/lease reply. A nil Lease with Open true
// means "nothing leasable right now, poll again"; Open false means every
// shard of every job is done — workers exit.
type LeaseResponse struct {
	Open  bool   `json:"open"`
	Lease *Lease `json:"lease,omitempty"`
}

// ProgressReport is one completed cell, POSTed by a shard worker.
type ProgressReport struct {
	Token  string `json:"token"`
	Index  int    `json:"index"`
	Detail string `json:"detail"`
}

// Typed error classes, mapped to HTTP statuses by the handler and back to
// sentinels by the client.

// ErrLeaseLost is returned (client-side) when the server no longer honors
// the worker's lease: it expired and was reassigned, or the shard is
// already done. The worker drops the shard and leases the next one.
var ErrLeaseLost = errors.New("serve: lease lost")

type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }
func notFound(jobID string) error {
	return &httpError{status: http.StatusNotFound, err: fmt.Errorf("serve: no job %q", jobID)}
}
func notReady(jobID string) error {
	return &httpError{status: http.StatusConflict, err: fmt.Errorf("serve: job %s is not finalized yet", jobID)}
}
func leaseLost(jobID string, shardIdx int) error {
	return &httpError{status: http.StatusGone, err: fmt.Errorf("serve: lease on job %s shard %d lost", jobID, shardIdx)}
}

// Handler exposes the server over HTTP. Routes:
//
//	POST /v1/campaigns                            submit {campaign, shards}
//	GET  /v1/campaigns                            list job statuses
//	GET  /v1/campaigns/{id}                       one job's status
//	POST /v1/lease                                lease a shard (any job)
//	POST /v1/campaigns/{id}/shards/{shard}/progress  report one cell
//	POST /v1/campaigns/{id}/shards/{shard}/result    upload the shard file
//	GET  /v1/campaigns/{id}/result                merged finalized bytes
//	GET  /v1/campaigns/{id}/events?from=N         JSONL progress stream
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"campaigns": s.List()})
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/campaigns/{id}/shards/{shard}/progress", s.handleProgress)
	mux.HandleFunc("POST /v1/campaigns/{id}/shards/{shard}/result", s.handleUpload)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Result(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(fmt.Errorf("serve: submit body: %w", err)))
		return
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	st, err := s.Submit(req.Campaign, req.Shards)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, badRequest(fmt.Errorf("serve: lease body: %w", err)))
		return
	}
	lease, open, err := s.Lease(req.Worker)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, LeaseResponse{Open: open, Lease: lease})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	shardIdx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		writeError(w, badRequest(fmt.Errorf("serve: shard %q", r.PathValue("shard"))))
		return
	}
	var rep ProgressReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		writeError(w, badRequest(fmt.Errorf("serve: progress body: %w", err)))
		return
	}
	if err := s.Progress(r.PathValue("id"), shardIdx, rep.Token, rep.Index, rep.Detail); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	shardIdx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		writeError(w, badRequest(fmt.Errorf("serve: shard %q", r.PathValue("shard"))))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, badRequest(fmt.Errorf("serve: upload body: %w", err)))
		return
	}
	if err := s.Upload(r.PathValue("id"), shardIdx, r.Header.Get("X-Satin-Lease"), data); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// handleEvents streams the job's progress as JSONL trace.Events — one
// trace.KindCell line per completed cell, exactly the events an in-process
// bus subscriber sees — flushing after every batch, until the job finishes
// or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, badRequest(fmt.Errorf("serve: events from=%q", q)))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		events, changed, finished, err := s.EventsSince(r.PathValue("id"), from)
		if err != nil {
			if from == 0 {
				writeError(w, err)
			}
			return
		}
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if finished {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// DecodeEvents parses a JSONL event stream (the /events wire format) back
// into trace.Events — the client-side inverse of handleEvents.
func DecodeEvents(r io.Reader, fn func(trace.Event) error) error {
	dec := json.NewDecoder(r)
	for {
		var e trace.Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("serve: event stream: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
