package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"satin/internal/telemetry"
	"satin/internal/trace"
)

// Wire types. The campaign travels as its canonical JSON — the same bytes
// the result-file header embeds — so workers and the server agree on the
// expansion by construction.

// SubmitRequest is the POST /v1/campaigns body.
type SubmitRequest struct {
	Campaign json.RawMessage `json:"campaign"`
	Shards   int             `json:"shards"`
}

// JobStatus is one job's public state.
type JobStatus struct {
	ID         string        `json:"id"`
	Name       string        `json:"name,omitempty"`
	Cells      int           `json:"cells"`
	Done       int           `json:"done"`
	Shards     []ShardStatus `json:"shards"`
	Finalized  bool          `json:"finalized"`
	MergeError string        `json:"merge_error,omitempty"`
	// Stragglers is the wall-clock anomaly summary (telemetry side channel;
	// absent until something has been timed).
	Stragglers *telemetry.StragglerReport `json:"stragglers,omitempty"`
}

// ShardStatus is one shard's public state.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Cells  int    `json:"cells"`
	State  string `json:"state"`
	Worker string `json:"worker,omitempty"`
}

// Lease is one shard handout.
type Lease struct {
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	Token string `json:"token"`
	TTLMs int64  `json:"ttl_ms"`
	// Cells are the campaign cell indices this shard executes.
	Cells []int `json:"cells"`
	// Campaign is the canonical campaign JSON.
	Campaign json.RawMessage `json:"campaign"`
}

// LeaseResponse is the POST /v1/lease reply. A nil Lease with Open true
// means "nothing leasable right now, poll again"; Open false means every
// shard of every job is done — workers exit.
type LeaseResponse struct {
	Open  bool   `json:"open"`
	Lease *Lease `json:"lease,omitempty"`
}

// ProgressReport is one completed cell, POSTed by a shard worker. CellNs
// and Forked are wall-clock telemetry piggybacked on the report (the lease
// renewal the worker sends anyway); the protocol ignores them.
type ProgressReport struct {
	Token  string `json:"token"`
	Index  int    `json:"index"`
	Detail string `json:"detail"`
	// CellNs is the cell's wall-clock duration in nanoseconds (0 = untimed).
	CellNs int64 `json:"cell_ns,omitempty"`
	// Forked marks a cell executed inside a checkpoint-fork group.
	Forked bool `json:"forked,omitempty"`
}

// Typed error classes, mapped to HTTP statuses by the handler and back to
// sentinels by the client.

// ErrLeaseLost is returned (client-side) when the server no longer honors
// the worker's lease: it expired and was reassigned, or the shard is
// already done. The worker drops the shard and leases the next one.
var ErrLeaseLost = errors.New("serve: lease lost")

type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }
func notFound(jobID string) error {
	return &httpError{status: http.StatusNotFound, err: fmt.Errorf("serve: no job %q", jobID)}
}
func notReady(jobID string) error {
	return &httpError{status: http.StatusConflict, err: fmt.Errorf("serve: job %s is not finalized yet", jobID)}
}
func leaseLost(jobID string, shardIdx int) error {
	return &httpError{status: http.StatusGone, err: fmt.Errorf("serve: lease on job %s shard %d lost", jobID, shardIdx)}
}

// Handler exposes the server over HTTP. Routes:
//
//	POST /v1/campaigns                            submit {campaign, shards}
//	GET  /v1/campaigns                            list job statuses
//	GET  /v1/campaigns/{id}                       one job's status
//	POST /v1/lease                                lease a shard (any job)
//	POST /v1/campaigns/{id}/shards/{shard}/progress  report one cell
//	POST /v1/campaigns/{id}/shards/{shard}/result    upload the shard file
//	GET  /v1/campaigns/{id}/result                merged finalized bytes
//	GET  /v1/campaigns/{id}/events?from=N         JSONL progress stream
//	GET  /v1/campaigns/{id}/timeline              Chrome trace_event JSON
//	GET  /metrics                                 Prometheus text exposition
//	GET  /healthz, /readyz                        liveness / readiness
//
// Every /v1 route is instrumented: request counts by route and status, and
// a latency histogram by route. The observability endpoints themselves are
// not (a scraper must not inflate the numbers it reads).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, h))
	}
	handle("POST /v1/campaigns", "submit", s.handleSubmit)
	handle("GET /v1/campaigns", "list", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"campaigns": s.List()})
	})
	handle("GET /v1/campaigns/{id}", "status", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, st)
	})
	handle("POST /v1/lease", "lease", s.handleLease)
	handle("POST /v1/campaigns/{id}/shards/{shard}/progress", "progress", s.handleProgress)
	handle("POST /v1/campaigns/{id}/shards/{shard}/result", "upload", s.handleUpload)
	handle("GET /v1/campaigns/{id}/result", "result", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Result(r.PathValue("id"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	handle("GET /v1/campaigns/{id}/events", "events", s.handleEvents)
	handle("GET /v1/campaigns/{id}/timeline", "timeline", s.handleTimeline)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := os.Stat(s.opt.DataDir); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "data dir unavailable")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// statusWriter records the response status for instrumentation. It must
// pass Flush through: handleEvents streams.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-route request counter and
// latency histogram, pre-registering the route's series so a scrape lists
// every route from the first request onward.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.tel.reg.Histogram("satin_http_request_duration_seconds",
		"HTTP request latency by route.", httpDurationBounds, "route", route)
	s.tel.reg.Counter("satin_http_requests_total",
		"HTTP requests by route and status code.", "route", route, "code", "200")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		hist.Observe(time.Since(start).Seconds())
		s.tel.reg.Counter("satin_http_requests_total", "",
			"route", route, "code", strconv.Itoa(sw.status)).Inc()
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.reg.WritePrometheus(w)
}

// handleTimeline serves one job's wall-clock history as Chrome trace_event
// JSON (loadable in ui.perfetto.dev, lintable by satin-sim -lint-chrome).
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	spans, err := s.Timeline(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteChromeTrace(w, spans)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, badRequest(fmt.Errorf("serve: submit body: %w", err)))
		return
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	st, err := s.Submit(req.Campaign, req.Shards)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		s.writeError(w, badRequest(fmt.Errorf("serve: lease body: %w", err)))
		return
	}
	lease, open, err := s.Lease(req.Worker)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, LeaseResponse{Open: open, Lease: lease})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	shardIdx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		s.writeError(w, badRequest(fmt.Errorf("serve: shard %q", r.PathValue("shard"))))
		return
	}
	var rep ProgressReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		s.writeError(w, badRequest(fmt.Errorf("serve: progress body: %w", err)))
		return
	}
	if err := s.Progress(r.PathValue("id"), shardIdx, rep); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	shardIdx, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		s.writeError(w, badRequest(fmt.Errorf("serve: shard %q", r.PathValue("shard"))))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, badRequest(fmt.Errorf("serve: upload body: %w", err)))
		return
	}
	if err := s.Upload(r.PathValue("id"), shardIdx, r.Header.Get("X-Satin-Lease"), data); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// handleEvents streams the job's progress as JSONL trace.Events — one
// trace.KindCell line per completed cell, exactly the events an in-process
// bus subscriber sees — flushing after every batch, until the job finishes
// or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			s.writeError(w, badRequest(fmt.Errorf("serve: events from=%q", q)))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		events, changed, finished, err := s.EventsSince(r.PathValue("id"), from)
		if err != nil {
			if from == 0 {
				s.writeError(w, err)
			}
			return
		}
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if finished {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// DecodeEvents parses a JSONL event stream (the /events wire format) back
// into trace.Events — the client-side inverse of handleEvents.
func DecodeEvents(r io.Reader, fn func(trace.Event) error) error {
	dec := json.NewDecoder(r)
	for {
		var e trace.Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("serve: event stream: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error onto its HTTP status and JSON body. Server
// faults (5xx) additionally go to the structured log — a 4xx is the
// client's problem, a 5xx is the operator's.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	if status >= 500 {
		s.log.Error("request failed", "status", status, "error", err.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
