package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"satin/internal/campaign"
	"satin/internal/profile"
	"satin/internal/serve"
	"satin/internal/telemetry"
)

// shardUpload runs the leased cells in-process and returns the shard's
// result file bytes, exactly as a worker would produce them.
func shardUpload(t *testing.T, dir string, lease *serve.Lease) []byte {
	t.Helper()
	c, err := campaign.Parse(lease.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "up.result")
	if _, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		SpecTrial: fakeTrial, Only: append([]int(nil), lease.Cells...),
	}); err != nil {
		t.Fatalf("shard run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTelemetryLifecycle drives one deterministic lease → expire →
// re-lease → upload → merge history on a fake clock and checks that every
// protocol transition shows up in the metrics, the straggler report, and a
// lint-clean timeline — without touching the protocol outcome.
func TestTelemetryLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newServer(t, serve.Options{LeaseTTL: time.Minute, Now: clock.Now})

	st, err := s.Submit([]byte(gridCampaign), 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Worker A leases shard 0, reports one timed (forked) cell, then goes
	// quiet until the lease expires.
	leaseA, _, err := s.Lease("A")
	if err != nil || leaseA == nil {
		t.Fatalf("Lease A: %v, %v", leaseA, err)
	}
	clock.Advance(10 * time.Second)
	if err := s.Progress(leaseA.Job, leaseA.Shard, serve.ProgressReport{
		Token: leaseA.Token, Index: leaseA.Cells[0], Detail: "ok",
		CellNs: (1500 * time.Millisecond).Nanoseconds(), Forked: true,
	}); err != nil {
		t.Fatalf("Progress: %v", err)
	}
	clock.Advance(2 * time.Minute) // expiry was +60s after the report

	// Worker B inherits shard 0 (the expiry), takes shard 1 too, and
	// uploads both.
	leaseB0, _, err := s.Lease("B")
	if err != nil || leaseB0 == nil || leaseB0.Shard != leaseA.Shard {
		t.Fatalf("Lease B0 = %+v, %v (want reassigned shard %d)", leaseB0, err, leaseA.Shard)
	}
	leaseB1, _, err := s.Lease("B")
	if err != nil || leaseB1 == nil {
		t.Fatalf("Lease B1: %v, %v", leaseB1, err)
	}
	clock.Advance(5 * time.Second)
	for _, l := range []*serve.Lease{leaseB0, leaseB1} {
		if err := s.Upload(l.Job, l.Shard, l.Token, shardUpload(t, t.TempDir(), l)); err != nil {
			t.Fatalf("Upload shard %d: %v", l.Shard, err)
		}
	}

	// The dead worker's late report is rejected as stale.
	err = s.Progress(leaseA.Job, leaseA.Shard, serve.ProgressReport{Token: leaseA.Token, Detail: "late"})
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("stale progress = %v, want lease-lost rejection", err)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"satin_leases_granted_total 3",
		"satin_leases_expired_total 1",
		"satin_leases_renewed_total 1",
		"satin_lease_stale_rejections_total 1",
		"satin_uploads_verified_total 2",
		"satin_uploads_rejected_total 0",
		`satin_merges_total{outcome="ok"} 1`,
		`satin_merges_total{outcome="error"} 0`,
		`satin_job_cells_total{job="` + st.ID + `"} 6`,
		`satin_job_cells_done{job="` + st.ID + `"} 6`,
		`satin_cells_reported_total{job="` + st.ID + `"} 1`,
		`satin_cells_forked_total{job="` + st.ID + `"} 1`,
		`satin_cell_duration_seconds_count{job="` + st.ID + `",shard="0"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("exposition:\n%s", buf.String())
	}

	// Straggler report: one re-lease, shard 0 both slower and the idle one.
	final, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	sr := final.Stragglers
	if sr == nil {
		t.Fatal("finished job has no straggler report")
	}
	if sr.ReLeases != 1 || sr.SlowestShard != leaseA.Shard {
		t.Fatalf("stragglers = %+v", sr)
	}
	if sr.IdleMs < 59_000 { // shard 0 sat unleased from expiry to re-grant (60s)
		t.Fatalf("idle = %vms, want >= 59000", sr.IdleMs)
	}
	if len(sr.SlowestCells) != 1 || sr.SlowestCells[0].Ms != 1500 {
		t.Fatalf("slowest cells = %+v", sr.SlowestCells)
	}

	// Timeline: job + two lease generations + cell + merge, all nesting.
	spans, err := s.Timeline(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := telemetry.WriteChromeTrace(&trace, spans); err != nil {
		t.Fatal(err)
	}
	if _, err := profile.ValidateChromeTrace(bytes.NewReader(trace.Bytes())); err != nil {
		t.Fatalf("timeline fails chrome lint: %v\n%s", err, trace.String())
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"job " + st.ID, "merge",
		"lease " + leaseA.Token, "lease " + leaseB0.Token, "lease " + leaseB1.Token,
	} {
		if !names[want] {
			t.Fatalf("timeline missing span %q (have %v)", want, names)
		}
	}

	if _, err := s.Timeline("nope"); err == nil {
		t.Fatal("Timeline of unknown job succeeded")
	}
}

// TestObservabilityEndpoints: /healthz, /readyz, /metrics over HTTP, plus
// instrumentation of the /v1 routes.
func TestObservabilityEndpoints(t *testing.T) {
	dataDir := t.TempDir()
	s := newServer(t, serve.Options{DataDir: dataDir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}

	// A fresh server already exposes every static family, at zero.
	text, err := client.MetricsText(ctx)
	if err != nil {
		t.Fatalf("MetricsText: %v", err)
	}
	for _, want := range []string{
		"# TYPE satin_leases_granted_total counter",
		"satin_leases_expired_total 0",
		"satin_lease_stale_rejections_total 0",
		"satin_uploads_rejected_total 0",
		`satin_http_requests_total{code="200",route="status"} 0`,
		`satin_http_request_duration_seconds_count{route="lease"} 0`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("fresh /metrics missing %q:\n%s", want, text)
		}
	}

	// One submit + one status: the route counters move.
	if _, err := client.Submit(ctx, []byte(gridCampaign), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := client.Status(ctx, "c1"); err != nil {
		t.Fatalf("Status: %v", err)
	}
	text, err = client.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`satin_http_requests_total{code="200",route="submit"} 1`,
		`satin_http_requests_total{code="200",route="status"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// Readiness degrades when the data dir vanishes; liveness does not.
	if err := os.RemoveAll(dataDir); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after losing data dir = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
}

// TestWriteErrorLogsServerFaults: a 5xx response leaves a structured log
// record with the status and error; a 4xx stays quiet.
func TestWriteErrorLogsServerFaults(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, telemetry.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	s := newServer(t, serve.Options{DataDir: dataDir, Logger: logger})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Complete a single-shard job, then corrupt the stored merge so the
	// result download becomes a server-side fault.
	if _, err := client.Submit(ctx, []byte(gridCampaign), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	lease, _, err := client.Lease(ctx, "A")
	if err != nil || lease == nil {
		t.Fatalf("Lease: %v, %v", lease, err)
	}
	if err := client.Upload(ctx, lease.Job, lease.Shard, lease.Token, shardUpload(t, t.TempDir(), lease)); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	// A 4xx (unknown job) is the client's problem: no log record.
	logBuf.Reset()
	if _, err := client.Status(ctx, "nope"); err == nil {
		t.Fatal("Status of unknown job succeeded")
	}
	if strings.Contains(logBuf.String(), "request failed") {
		t.Fatalf("4xx was logged as a fault:\n%s", logBuf.String())
	}

	if err := os.Remove(filepath.Join(dataDir, "job-"+lease.Job, "merged.result")); err != nil {
		t.Fatal(err)
	}
	logBuf.Reset()
	if _, err := client.Result(ctx, lease.Job); err == nil {
		t.Fatal("Result with deleted merge succeeded")
	}
	var rec map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v (%q)", err, line)
		}
		if rec["msg"] == "request failed" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no 'request failed' record:\n%s", logBuf.String())
	}
	if rec["level"] != "ERROR" || rec["status"] != float64(500) {
		t.Fatalf("record = %v", rec)
	}
	if msg, _ := rec["error"].(string); !strings.Contains(msg, "merged result") {
		t.Fatalf("record error = %v", rec["error"])
	}
}
