package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"satin/internal/trace"
)

// ErrNotReady is returned by Client.Result while the job is still running.
var ErrNotReady = errors.New("serve: result not ready")

// Client is the typed wire interface to a satin-serve server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// do issues one request and decodes the JSON reply into out (when non-nil),
// mapping error statuses back to the package sentinels.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, header http.Header, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), body)
	if err != nil {
		return fmt.Errorf("serve: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decoding %s %s reply: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx reply into an error, mapping the lease-lost
// and not-ready statuses onto their sentinels so callers can errors.Is.
func decodeError(resp *http.Response) error {
	var msg struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &msg) != nil || msg.Error == "" {
		msg.Error = strings.TrimSpace(string(data))
		if msg.Error == "" {
			msg.Error = resp.Status
		}
	}
	switch resp.StatusCode {
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrLeaseLost, msg.Error)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrNotReady, msg.Error)
	}
	return fmt.Errorf("serve: server said %d: %s", resp.StatusCode, msg.Error)
}

// Submit registers a campaign split into `shards` shards.
func (c *Client) Submit(ctx context.Context, campaignJSON []byte, shards int) (JobStatus, error) {
	body, err := json.Marshal(SubmitRequest{Campaign: campaignJSON, Shards: shards})
	if err != nil {
		return JobStatus{}, fmt.Errorf("serve: encoding submit: %w", err)
	}
	var st JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/campaigns", bytes.NewReader(body), nil, &st)
	return st, err
}

// Lease asks for one shard. A nil lease with open true means poll again;
// open false means every shard everywhere is done.
func (c *Client) Lease(ctx context.Context, worker string) (*Lease, bool, error) {
	body, _ := json.Marshal(map[string]string{"worker": worker})
	var resp LeaseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease", bytes.NewReader(body), nil, &resp); err != nil {
		return nil, false, err
	}
	return resp.Lease, resp.Open, nil
}

// Progress reports one completed cell and renews the lease. The report's
// telemetry fields (CellNs, Forked) ride along for free.
func (c *Client) Progress(ctx context.Context, jobID string, shardIdx int, rep ProgressReport) error {
	body, _ := json.Marshal(rep)
	path := fmt.Sprintf("/v1/campaigns/%s/shards/%d/progress", url.PathEscape(jobID), shardIdx)
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(body), nil, nil)
}

// Upload sends the shard's result file bytes.
func (c *Client) Upload(ctx context.Context, jobID string, shardIdx int, token string, data []byte) error {
	path := fmt.Sprintf("/v1/campaigns/%s/shards/%d/result", url.PathEscape(jobID), shardIdx)
	header := http.Header{"X-Satin-Lease": []string{token}}
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(data), header, nil)
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, jobID string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(jobID), nil, nil, &st)
	return st, err
}

// List fetches every job's status.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var resp struct {
		Campaigns []JobStatus `json:"campaigns"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, nil, &resp)
	return resp.Campaigns, err
}

// Result downloads the finalized merged result bytes, or ErrNotReady.
func (c *Client) Result(ctx context.Context, jobID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.url("/v1/campaigns/"+url.PathEscape(jobID)+"/result"), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: fetching result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: reading result: %w", err)
	}
	return data, nil
}

// raw fetches one path's body bytes, mapping error statuses like do.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: reading %s: %w", path, err)
	}
	return data, nil
}

// Timeline downloads one job's wall-clock campaign timeline as Chrome
// trace_event JSON.
func (c *Client) Timeline(ctx context.Context, jobID string) ([]byte, error) {
	return c.raw(ctx, "/v1/campaigns/"+url.PathEscape(jobID)+"/timeline")
}

// MetricsText downloads the server's Prometheus text exposition.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/metrics")
}

// Healthz probes the liveness and readiness endpoints, returning nil only
// when both answer 2xx.
func (c *Client) Healthz(ctx context.Context) error {
	if _, err := c.raw(ctx, "/healthz"); err != nil {
		return fmt.Errorf("serve: health check: %w", err)
	}
	if _, err := c.raw(ctx, "/readyz"); err != nil {
		return fmt.Errorf("serve: readiness check: %w", err)
	}
	return nil
}

// StreamEvents follows the job's JSONL progress stream from event index
// `from`, invoking fn per event, until the job finishes, fn errors, or the
// context ends. It returns nil on a finished job.
func (c *Client) StreamEvents(ctx context.Context, jobID string, from int, fn func(trace.Event) error) error {
	path := "/v1/campaigns/" + url.PathEscape(jobID) + "/events?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return fmt.Errorf("serve: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve: opening event stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	err = DecodeEvents(resp.Body, fn)
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
