package serve_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"satin/internal/campaign"
	"satin/internal/runner"
	"satin/internal/serve"
	"satin/internal/spec"
	"satin/internal/trace"
)

// gridCampaign: 2 fault plans × 3 seeds = 6 cells, SATIN vs fast evader.
const gridCampaign = `{
  "version": 1,
  "name": "serve-grid",
  "scenario": {
    "version": 1,
    "seed": 1,
    "defense": {"kind": "satin", "satin": {"tgoal": "4s", "max_rounds": 4}},
    "evader": {"kind": "fast"},
    "run": {"to_completion": true}
  },
  "faults": ["", "scale:2"],
  "seeds": {"base": 1, "count": 3}
}`

func readFileBytes(path string) ([]byte, error) { return os.ReadFile(path) }

// fakeTrial is a deterministic, instant stand-in for the simulation trial.
func fakeTrial(s spec.Spec) (runner.Metrics, error) {
	m := runner.Metrics{}.Add("seed", float64(s.Seed))
	if s.Faults != "" {
		m = m.Add("faulted", 1)
	}
	return m, nil
}

// seedKey groups the campaign's cells by seed, as CheckpointGroupKey would.
func seedKey(s spec.Spec) (string, bool) {
	return string(rune('a' + int(s.Seed))), true
}

// fakeGroupTrial satisfies the group contract by running the spec trial per
// member — metrics-equivalent to forking, which is all the tests need.
func fakeGroupTrial(_ context.Context, members []spec.Spec) []campaign.GroupResult {
	out := make([]campaign.GroupResult, len(members))
	for i, m := range members {
		metrics, err := fakeTrial(m)
		out[i] = campaign.GroupResult{Metrics: metrics, Err: err}
	}
	return out
}

// singleProcessBytes runs the campaign start-to-finish in-process and
// returns the finalized file bytes — the invariance reference.
func singleProcessBytes(t *testing.T) []byte {
	t.Helper()
	c, err := campaign.Parse([]byte(gridCampaign))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	path := filepath.Join(t.TempDir(), "single.result")
	res, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{SpecTrial: fakeTrial})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Finalized {
		t.Fatal("single-process run did not finalize")
	}
	data, err := readFileBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fakeClock is an injectable Options.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newServer(t *testing.T, opt serve.Options) *serve.Server {
	t.Helper()
	if opt.DataDir == "" {
		opt.DataDir = t.TempDir()
	}
	s, err := serve.New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// TestShardedRunMatchesSingleProcess is the end-to-end tentpole check:
// submit over HTTP, drain with two concurrent workers, and require the
// merged result to be byte-identical to one uninterrupted in-process run.
func TestShardedRunMatchesSingleProcess(t *testing.T) {
	want := singleProcessBytes(t)
	s := newServer(t, serve.Options{GroupKey: seedKey})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, []byte(gridCampaign), 3)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Cells != 6 || len(st.Shards) != 3 {
		t.Fatalf("status = %+v, want 6 cells over 3 shards", st)
	}

	scratch := t.TempDir()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = serve.RunWorker(ctx, client, serve.WorkerOptions{
				Name:       string(rune('A' + i)),
				Dir:        filepath.Join(scratch, string(rune('A'+i))),
				Trial:      fakeTrial,
				GroupKey:   seedKey,
				GroupTrial: fakeGroupTrial,
				Poll:       5 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged sharded result differs from single-process bytes")
	}

	final, err := client.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !final.Finalized || final.Done != 6 {
		t.Fatalf("final status = %+v, want finalized with 6 done", final)
	}
	for _, sh := range final.Shards {
		if sh.State != serve.StateDone {
			t.Fatalf("shard %d state %q, want done", sh.Shard, sh.State)
		}
	}
}

// TestProgressStreamDeliversEveryCell: the JSONL event stream carries one
// trace.KindCell event per completed cell and terminates when the job does.
func TestProgressStreamDeliversEveryCell(t *testing.T) {
	s := newServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, []byte(gridCampaign), 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	var streamed []trace.Event
	done := make(chan error, 1)
	go func() {
		done <- client.StreamEvents(ctx, st.ID, 0, func(e trace.Event) error {
			streamed = append(streamed, e)
			return nil
		})
	}()

	if err := serve.RunWorker(ctx, client, serve.WorkerOptions{
		Name: "w", Dir: t.TempDir(), Trial: fakeTrial, Poll: 5 * time.Millisecond,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("StreamEvents: %v", err)
	}
	if len(streamed) != 6 {
		t.Fatalf("streamed %d events, want 6", len(streamed))
	}
	seen := map[int]bool{}
	for _, e := range streamed {
		if e.Kind != trace.KindCell || e.Core != -1 || e.At != 0 {
			t.Fatalf("event %+v is not a campaign cell event", e)
		}
		seen[e.Area] = true
	}
	if len(seen) != 6 {
		t.Fatalf("stream covered %d distinct cells, want 6", len(seen))
	}
}

// TestLeaseExpiryReassignsShard: a shard whose worker went quiet past the
// TTL is handed to the next worker; the dead worker's token is refused.
func TestLeaseExpiryReassignsShard(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newServer(t, serve.Options{LeaseTTL: time.Minute, Now: clock.Now})
	if _, err := s.Submit([]byte(gridCampaign), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	leaseA, open, err := s.Lease("A")
	if err != nil || !open || leaseA == nil {
		t.Fatalf("Lease A = %v, %v, %v", leaseA, open, err)
	}
	// While the lease is live the shard is not handed out again.
	if l, open, _ := s.Lease("B"); l != nil || !open {
		t.Fatalf("live lease re-issued: %v (open %v)", l, open)
	}
	// Progress renews: advance close to expiry, report, advance again —
	// still held.
	clock.Advance(50 * time.Second)
	if err := s.Progress(leaseA.Job, leaseA.Shard, serve.ProgressReport{Token: leaseA.Token, Index: leaseA.Cells[0], Detail: "ok"}); err != nil {
		t.Fatalf("Progress: %v", err)
	}
	clock.Advance(50 * time.Second)
	if l, _, _ := s.Lease("B"); l != nil {
		t.Fatal("renewed lease was re-issued")
	}
	// Past expiry the shard is reassigned and the old token dies.
	clock.Advance(time.Minute)
	leaseB, open, err := s.Lease("B")
	if err != nil || !open || leaseB == nil {
		t.Fatalf("Lease B after expiry = %v, %v, %v", leaseB, open, err)
	}
	if leaseB.Shard != leaseA.Shard || leaseB.Token == leaseA.Token {
		t.Fatalf("reassignment gave shard %d token %q (was shard %d token %q)",
			leaseB.Shard, leaseB.Token, leaseA.Shard, leaseA.Token)
	}
	if err := s.Progress(leaseA.Job, leaseA.Shard, serve.ProgressReport{Token: leaseA.Token, Detail: "late"}); err == nil {
		t.Fatal("stale token accepted for progress")
	}
	if err := s.Upload(leaseA.Job, leaseA.Shard, leaseA.Token, nil); err == nil {
		t.Fatal("stale token accepted for upload")
	}
}

// TestStaleUploadOverHTTP: the HTTP layer maps a dead lease onto
// ErrLeaseLost so the worker loop can drop the shard and move on.
func TestStaleUploadOverHTTP(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newServer(t, serve.Options{LeaseTTL: time.Minute, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, err := client.Submit(ctx, []byte(gridCampaign), 1); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	lease, _, err := client.Lease(ctx, "A")
	if err != nil || lease == nil {
		t.Fatalf("Lease: %v, %v", lease, err)
	}
	clock.Advance(2 * time.Minute)
	if _, _, err := client.Lease(ctx, "B"); err != nil {
		t.Fatalf("re-lease: %v", err)
	}
	err = client.Progress(ctx, lease.Job, lease.Shard, serve.ProgressReport{Token: lease.Token, Detail: "late"})
	if !errors.Is(err, serve.ErrLeaseLost) {
		t.Fatalf("stale progress error = %v, want ErrLeaseLost", err)
	}
	err = client.Upload(ctx, lease.Job, lease.Shard, lease.Token, []byte("junk"))
	if !errors.Is(err, serve.ErrLeaseLost) {
		t.Fatalf("stale upload error = %v, want ErrLeaseLost", err)
	}
}

// TestKilledWorkerShardIsRecomputed: worker A runs part of its shard and
// dies silently; after expiry worker B re-leases the shard, recomputes it
// from scratch, and the merged job still matches single-process bytes.
func TestKilledWorkerShardIsRecomputed(t *testing.T) {
	want := singleProcessBytes(t)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newServer(t, serve.Options{LeaseTTL: time.Minute, Now: clock.Now})
	st, err := s.Submit([]byte(gridCampaign), 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	c, err := campaign.Parse([]byte(gridCampaign))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	dir := t.TempDir()
	runShard := func(name string, lease *serve.Lease, maxCells int) {
		t.Helper()
		path := filepath.Join(dir, name+".result")
		_, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
			SpecTrial: fakeTrial,
			Only:      lease.Cells,
			MaxCells:  maxCells,
		})
		if err != nil {
			t.Fatalf("shard run %s: %v", name, err)
		}
		if maxCells > 0 {
			return // simulated kill: no upload, no progress
		}
		data, err := readFileBytes(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Upload(lease.Job, lease.Shard, lease.Token, data); err != nil {
			t.Fatalf("upload %s: %v", name, err)
		}
	}

	// A leases shard 0, completes one cell, dies without reporting.
	leaseA, _, err := s.Lease("A")
	if err != nil || leaseA == nil {
		t.Fatalf("lease A: %v, %v", leaseA, err)
	}
	runShard("a-partial", leaseA, 1)

	// C drains the other shard meanwhile.
	leaseC, _, err := s.Lease("C")
	if err != nil || leaseC == nil {
		t.Fatalf("lease C: %v, %v", leaseC, err)
	}
	runShard("c", leaseC, 0)

	// Past expiry, B inherits A's shard and computes it fully.
	clock.Advance(2 * time.Minute)
	leaseB, _, err := s.Lease("B")
	if err != nil || leaseB == nil {
		t.Fatalf("lease B: %v, %v", leaseB, err)
	}
	if leaseB.Shard != leaseA.Shard {
		t.Fatalf("B got shard %d, want A's shard %d", leaseB.Shard, leaseA.Shard)
	}
	runShard("b", leaseB, 0)

	got, err := s.Result(st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged result after dead-worker reassignment differs from single-process bytes")
	}
}

// TestSubmitIdempotent: re-submitting the same campaign with the same shard
// count returns the existing unfinished job.
func TestSubmitIdempotent(t *testing.T) {
	s := newServer(t, serve.Options{})
	a, err := s.Submit([]byte(gridCampaign), 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	b, err := s.Submit([]byte(gridCampaign), 2)
	if err != nil {
		t.Fatalf("re-Submit: %v", err)
	}
	if a.ID != b.ID {
		t.Fatalf("resubmit forked job %s from %s", b.ID, a.ID)
	}
	c, err := s.Submit([]byte(gridCampaign), 3)
	if err != nil {
		t.Fatalf("Submit with different shards: %v", err)
	}
	if c.ID == a.ID {
		t.Fatal("different shard count reused the job")
	}
}

// TestResultNotReady: fetching an unfinished job's result is ErrNotReady
// over the wire, and unknown jobs are not-found.
func TestResultNotReady(t *testing.T) {
	s := newServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, []byte(gridCampaign), 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := client.Result(ctx, st.ID); !errors.Is(err, serve.ErrNotReady) {
		t.Fatalf("Result on running job = %v, want ErrNotReady", err)
	}
	if _, err := client.Status(ctx, "nope"); err == nil {
		t.Fatal("Status on unknown job succeeded")
	}
}

// TestWorkerExitsWithoutWork: a worker pointed at an idle server returns
// immediately instead of polling forever.
func TestWorkerExitsWithoutWork(t *testing.T) {
	s := newServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	if err := serve.RunWorker(context.Background(), client, serve.WorkerOptions{
		Name: "idle", Dir: t.TempDir(), Trial: fakeTrial,
	}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
}

// TestSubmitRejectsBadCampaign: malformed campaigns fail submission.
func TestSubmitRejectsBadCampaign(t *testing.T) {
	s := newServer(t, serve.Options{})
	if _, err := s.Submit([]byte(`{"version": 1}`), 1); err == nil {
		t.Fatal("Submit accepted a campaign with no cells source")
	}
	if _, err := s.Submit([]byte(gridCampaign), 0); err == nil {
		t.Fatal("Submit accepted 0 shards")
	}
}
