package satin

// Tests for the checkpoint/fork protocol (docs/CHECKPOINT.md). The load-
// bearing property is fork identity: a continuation restored from a snapshot
// must be byte-identical — streamed trace, timeline text, and formatted
// report — to a from-scratch run of the same member spec. Everything else
// (format round-trip, support gating, the edge cases the issue calls out)
// hangs off that.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"satin/internal/campaign"
)

// ckptSpec builds a checkpointable spec: SATIN vs the fast evader, a fixed
// horizon, and an optional member fault plan.
func ckptSpec(horizon time.Duration, faults string) ScenarioSpec {
	return ScenarioSpec{
		Version: ScenarioSpecVersion,
		Name:    "ckpt",
		Seed:    1,
		Defense: SpecDefense{Kind: "satin", SATIN: &SpecSATINConfig{Tgoal: SpecDuration(19 * time.Second)}},
		Evader:  SpecEvader{Kind: "fast"},
		Run:     SpecRun{For: SpecDuration(horizon)},
		Faults:  faults,
	}
}

// takeCheckpoint runs the spec's fault-free prefix to `at` and captures a
// snapshot keyed for the given member.
func takeCheckpoint(t *testing.T, member ScenarioSpec, at time.Duration) *Snapshot {
	t.Helper()
	prefix := member.Clone()
	prefix.Faults = ""
	sc, err := FromSpec(prefix)
	if err != nil {
		t.Fatalf("FromSpec(prefix): %v", err)
	}
	key, err := CheckpointKey(member)
	if err != nil {
		t.Fatalf("CheckpointKey: %v", err)
	}
	snap, err := sc.Checkpoint(at, key)
	if err != nil {
		t.Fatalf("Checkpoint(%v): %v", at, err)
	}
	return snap
}

// runForked restores snap into a fresh member scenario (sink subscribed
// before restore, as satin-sim -resume-from does) and drives the remaining
// horizon.
func runForked(t *testing.T, snap *Snapshot, member ScenarioSpec) (trace, timeline, report string) {
	t.Helper()
	c, err := CanonicalizeSpec(member)
	if err != nil {
		t.Fatalf("CanonicalizeSpec: %v", err)
	}
	sc, err := FromSpec(c)
	if err != nil {
		t.Fatalf("FromSpec(member): %v", err)
	}
	var out bytes.Buffer
	sink, err := NewStreamSink(&out, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	if err := sc.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	RunRemaining(sc, c)
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var tl bytes.Buffer
	if err := sc.Timeline().WriteText(&tl); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return out.String(), tl.String(), fmt.Sprintf("%+v", sc.Report())
}

// forkIdentity asserts the fork of `member` from a checkpoint at `at` is
// byte-identical to the from-scratch run.
func forkIdentity(t *testing.T, member ScenarioSpec, at time.Duration) {
	t.Helper()
	scratch, err := FromSpec(member)
	if err != nil {
		t.Fatalf("FromSpec(scratch): %v", err)
	}
	wantTrace, wantTL, wantRep := runScenario(t, scratch, func(sc *Scenario) { DriveSpec(sc, member) })

	snap := takeCheckpoint(t, member, at)

	// Round-trip through the on-disk format so the encode/decode path is on
	// the identity-critical path, not just unit-tested.
	path := filepath.Join(t.TempDir(), "ckpt.satinckp")
	if err := WriteCheckpoint(path, snap); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	snap, err = ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}

	gotTrace, gotTL, gotRep := runForked(t, snap, member)
	if gotTrace != wantTrace {
		t.Errorf("forked trace diverges from from-scratch run:\n%s", firstDiffLine(wantTrace, gotTrace))
	}
	if gotTL != wantTL {
		t.Errorf("forked timeline diverges from from-scratch run:\n%s", firstDiffLine(wantTL, gotTL))
	}
	if gotRep != wantRep {
		t.Errorf("forked report diverges:\nscratch: %s\nforked:  %s", wantRep, gotRep)
	}
}

// firstDiffLine locates the first differing line of two multi-line strings.
func firstDiffLine(want, got string) string {
	w := bytes.Split([]byte(want), []byte("\n"))
	g := bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}

// TestForkIdentityFaultFree forks a member identical to the prefix: the
// degenerate (but still load-bearing) case every campaign group contains.
func TestForkIdentityFaultFree(t *testing.T) {
	forkIdentity(t, ckptSpec(45*time.Second, ""), 30*time.Second)
}

// TestForkIdentityDVFSMember forks a member whose DVFS step lands after the
// barrier — the shape campaign prefix groups are made of.
func TestForkIdentityDVFSMember(t *testing.T) {
	forkIdentity(t, ckptSpec(45*time.Second, "dvfs:at=35s,factor=0.8"), 30*time.Second)
}

// TestForkIdentityHotplugMember forks a member with a post-barrier hotplug
// window, exercising SATIN's re-route claims on the suffix side.
func TestForkIdentityHotplugMember(t *testing.T) {
	forkIdentity(t, ckptSpec(60*time.Second, "hotplug:core=1,off=35s,on=50s"), 30*time.Second)
}

// TestForkMidHideWindow checkpoints inside an evader freeze window: after a
// comparer flagged a core (suspect) but before the trace was wiped (hidden).
// The hide countdown must ride the snapshot as a claim and fire in the fork
// exactly as it would have. The window is located from a deterministic
// from-scratch run of the prefix rather than hard-coded, so recalibrating the
// perf model cannot silently move the test off the window.
func TestForkMidHideWindow(t *testing.T) {
	member := ckptSpec(45*time.Second, "")
	probe, err := FromSpec(member)
	if err != nil {
		t.Fatalf("FromSpec(probe): %v", err)
	}
	DriveSpec(probe, member)
	// Candidate windows: each suspect followed by a later hidden event. Not
	// every suspect starts a hide (one arriving while the evader is already
	// hidden or reinstalling does not), so probe candidates until a snapshot
	// actually carries the countdown claim.
	var candidates []time.Duration
	events := probe.Timeline().Events()
	for i, e := range events {
		if e.Kind != "suspect" || e.At < 20*time.Second {
			continue
		}
		for _, h := range events[i+1:] {
			if h.Kind == "hidden" {
				if h.At > e.At {
					candidates = append(candidates, e.At+(h.At-e.At)/2)
				}
				break
			}
		}
	}
	if len(candidates) == 0 {
		t.Fatal("no suspect→hidden window found after 20s; cannot place the barrier")
	}
	var barrier time.Duration
	for _, cand := range candidates {
		snap := takeCheckpoint(t, member, cand)
		for _, c := range snap.State.Claims {
			if c.Name == "fast-evader-hide" {
				barrier = cand
			}
		}
		if barrier != 0 {
			break
		}
	}
	if barrier == 0 {
		t.Fatalf("none of %d candidate barriers landed mid hide window", len(candidates))
	}
	forkIdentity(t, member, barrier)
}

// TestForkIdentityHashCacheOff resumes a checkpoint taken with the
// incremental hash cache disabled — the cache-enabled flag is part of both
// the checkpoint key and the checker's restore contract.
func TestForkIdentityHashCacheOff(t *testing.T) {
	off := false
	member := ckptSpec(45*time.Second, "dvfs:at=35s,factor=0.8")
	member.HashCache = &off
	forkIdentity(t, member, 30*time.Second)
}

// TestCheckpointSupportGating pins the v1 protocol's refusals, including the
// issue's DVFS-straddles-the-checkpoint case that campaign grouping falls
// back on.
func TestCheckpointSupportGating(t *testing.T) {
	base := ckptSpec(45*time.Second, "")
	cases := []struct {
		name string
		mut  func(*ScenarioSpec)
		at   time.Duration
		want bool // supported?
	}{
		{"clean", func(s *ScenarioSpec) {}, 30 * time.Second, true},
		{"dvfs after barrier", func(s *ScenarioSpec) { s.Faults = "dvfs:at=35s,factor=0.8" }, 30 * time.Second, true},
		{"dvfs straddles barrier", func(s *ScenarioSpec) { s.Faults = "dvfs:at=25s,factor=0.8" }, 30 * time.Second, false},
		{"jitter plan", func(s *ScenarioSpec) { s.Faults = "jitter:0.1" }, 30 * time.Second, false},
		{"thread evader", func(s *ScenarioSpec) { s.Evader.Kind = "thread" }, 30 * time.Second, false},
		{"observability off", func(s *ScenarioSpec) { v := false; s.Observability = &v }, 30 * time.Second, false},
		{"profiling on", func(s *ScenarioSpec) { v := true; s.Profiling = &v }, 30 * time.Second, false},
		{"horizon at barrier", func(s *ScenarioSpec) {}, 45 * time.Second, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base.Clone()
			tc.mut(&s)
			err := CheckpointSupported(s, tc.at)
			if tc.want && err != nil {
				t.Errorf("CheckpointSupported = %v, want supported", err)
			}
			if !tc.want && err == nil {
				t.Errorf("CheckpointSupported accepted an unsupported shape")
			}
		})
	}
}

// TestCampaignForkInvariance runs one campaign twice — shared-prefix forking
// off and on — and requires byte-identical finalized result files. The fault
// axis is all forkable plans, so the forked run groups each seed's cells
// behind one prefix; the group trial must still reproduce the cell-by-cell
// bytes exactly.
func TestCampaignForkInvariance(t *testing.T) {
	tmpl := ckptSpec(45*time.Second, "")
	c := campaign.Spec{
		Version:  campaign.CurrentVersion,
		Name:     "fork-invariance",
		Scenario: &tmpl,
		Faults: []string{
			"",
			"dvfs:at=35s,factor=0.8",
			"dvfs:at=40s,factor=1.2",
			"hotplug:core=1,off=36s,on=42s",
		},
		Seeds: campaign.SeedRange{Base: 1, Count: 2},
	}
	runBytes := func(opt campaign.RunOptions) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "fork.result")
		res, err := campaign.Run(context.Background(), c, path, opt)
		if err != nil {
			t.Fatalf("campaign.Run: %v", err)
		}
		if !res.Finalized {
			t.Fatal("campaign did not finalize")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	plain := runBytes(campaign.RunOptions{Workers: 4, SpecTrial: RunSpecTrial})

	groups := 0
	largest := 0
	forked := runBytes(campaign.RunOptions{
		Workers:   4,
		SpecTrial: RunSpecTrial,
		GroupKey:  CheckpointGroupKey,
		GroupTrial: func(ctx context.Context, members []ScenarioSpec) []campaign.GroupResult {
			groups++
			if len(members) > largest {
				largest = len(members)
			}
			return RunCheckpointGroup(ctx, members)
		},
	})
	if groups == 0 {
		t.Fatal("forking enabled but no group was ever executed")
	}
	if largest != len(c.Faults) {
		t.Errorf("largest group has %d members, want %d (one per fault-axis value)", largest, len(c.Faults))
	}
	if !bytes.Equal(plain, forked) {
		t.Errorf("finalized campaign bytes differ between forking off (%d bytes) and on (%d bytes)", len(plain), len(forked))
	}
}

// TestResumeRejectsForeignSpec pins the prefix-compatibility gate: a member
// whose checkpoint key differs (here by seed) must not resume.
func TestResumeRejectsForeignSpec(t *testing.T) {
	member := ckptSpec(45*time.Second, "")
	snap := takeCheckpoint(t, member, 30*time.Second)
	foreign := member.Clone()
	foreign.Seed = 2
	if _, _, err := ResumeScenario(snap, foreign); err == nil {
		t.Fatal("ResumeScenario accepted a spec with a different checkpoint key")
	}
	if _, _, err := ResumeScenario(snap, member); err != nil {
		t.Fatalf("ResumeScenario rejected the matching member: %v", err)
	}
}
