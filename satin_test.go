package satin

import (
	"testing"
	"time"
)

func TestScenarioSATINDetectsEvader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	sc, err := NewScenario(WithSeed(11), WithSATIN(cfg), WithFastEvader(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sc.RunToCompletion()
	if got := len(sc.SATIN().Rounds()); got != 19 {
		t.Fatalf("rounds = %d, want 19", got)
	}
	alarms := sc.SATIN().Alarms()
	if len(alarms) != 1 || alarms[0].Area != 14 {
		t.Fatalf("alarms = %+v, want one in area 14", alarms)
	}
	if sc.Rootkit() == nil || sc.FastEvader() == nil {
		t.Error("attack accessors nil")
	}
	if sc.Now() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestScenarioBaselineEvaded(t *testing.T) {
	sc, err := NewScenario(
		WithSeed(12),
		WithBaseline(BaselineConfig{
			Period:          2 * time.Second,
			RandomizePeriod: true,
			Selection:       RandomCore,
			Technique:       DirectHash,
			MaxRounds:       3,
		}),
		WithFastEvader(0, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc.RunToCompletion()
	outs := sc.Baseline().Outcomes()
	if len(outs) != 3 {
		t.Fatalf("baseline rounds = %d, want 3", len(outs))
	}
	for _, o := range outs {
		if !o.Clean {
			t.Error("baseline detected an evading rootkit; expected evasion")
		}
	}
}

func TestScenarioThreadEvader(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 10
	sc, err := NewScenario(WithSeed(13), WithSATIN(cfg), WithThreadEvader(0))
	if err != nil {
		t.Fatal(err)
	}
	sc.Run(25 * time.Second)
	if sc.ThreadEvader() == nil {
		t.Fatal("thread evader nil")
	}
	if got := len(sc.ThreadEvader().SuspectEvents()); got < 8 {
		t.Errorf("thread evader flagged %d rounds, want ≈10", got)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := NewScenario(WithSATIN(DefaultConfig()), WithBaseline(BaselineConfig{})); err == nil {
		t.Error("SATIN+baseline accepted")
	}
}

func TestScenarioRootkitAt(t *testing.T) {
	sc, err := NewScenario(WithSeed(14), WithFastEvader(0, 0), WithRootkitAt(0))
	if err == nil {
		_ = sc
		t.Fatal("unmapped rootkit target accepted at start")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() []Round {
		cfg := DefaultConfig()
		cfg.Tgoal = 19 * time.Second
		cfg.MaxRounds = 19
		sc, err := NewScenario(WithSeed(42), WithSATIN(cfg), WithFastEvader(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		sc.RunToCompletion()
		return sc.SATIN().Rounds()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("round counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestScenarioTimeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	sc, err := NewScenario(WithSeed(31), WithSATIN(cfg), WithFastEvader(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sc.RunToCompletion()
	tl := sc.Timeline()
	if tl.Len() == 0 {
		t.Fatal("empty timeline")
	}
	events := tl.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("timeline out of order")
		}
	}
	// Every artifact class is represented: world entries, rounds, the
	// area-14 alarm, and evader reactions.
	kinds := map[string]int{}
	for _, e := range events {
		kinds[string(e.Kind)]++
	}
	if kinds["world-enter"] < 19 {
		t.Errorf("world-enter events = %d, want >= 19", kinds["world-enter"])
	}
	if kinds["round"] != 19 {
		t.Errorf("round events = %d, want 19", kinds["round"])
	}
	if kinds["alarm"] != 1 {
		t.Errorf("alarm events = %d, want 1", kinds["alarm"])
	}
	if kinds["suspect"] == 0 || kinds["hidden"] == 0 || kinds["reinstalled"] == 0 {
		t.Errorf("evader events missing: %v", kinds)
	}
}

func TestScenarioSyncGuardBlocksEvader(t *testing.T) {
	// Guard on, no bypass: the evader cannot install; assembling the
	// scenario surfaces the denial.
	_, err := NewScenario(WithSeed(41), WithSyncGuard(false), WithFastEvader(0, 0))
	if err == nil {
		t.Fatal("guarded scenario with an un-bypassed evader should fail to assemble")
	}
}

func TestScenarioSyncGuardBypassedThenCaught(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	sc, err := NewScenario(WithSeed(41), WithSyncGuard(true), WithSATIN(cfg), WithFastEvader(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Guard() == nil || !sc.Guard().Installed() {
		t.Fatal("guard missing")
	}
	sc.RunToCompletion()
	// One pass flags both the rootkit (14) and the flipped PTE (17) —
	// unless the evader hid the rootkit trace in area 14's race, which it
	// cannot, and the PTE flip is never restored by the evader at all.
	areas := map[int]bool{}
	for _, a := range sc.SATIN().Alarms() {
		areas[a.Area] = true
	}
	if !areas[14] || !areas[17] {
		t.Errorf("alarm areas = %v, want 14 and 17", areas)
	}
}

func TestScenarioFloodUnderNonPreemptiveIsInert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	sc, err := NewScenario(
		WithSeed(43), WithSATIN(cfg), WithFastEvader(0, 0),
		WithRouting(NonPreemptive), WithFlood(30000),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The flood never stops: bounded horizon.
	sc.Run(60 * time.Second)
	if sc.Flood() == nil || sc.Flood().Raised() == 0 {
		t.Fatal("flood not running")
	}
	alarms := sc.SATIN().Alarms()
	if len(alarms) != 1 || alarms[0].Area != 14 {
		t.Errorf("alarms = %+v; non-preemptive SATIN should shrug off the flood", alarms)
	}
	for c := 0; c < 6; c++ {
		if sc.Monitor().Preemptions(c) != 0 {
			t.Errorf("core %d preempted %d times under SCR_EL3.IRQ=0", c, sc.Monitor().Preemptions(c))
		}
	}
}
