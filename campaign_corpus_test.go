package satin

// The campaign-corpus contract, in-process: the committed smoke campaign,
// run through the real simulation trial, reproduces its committed result
// file byte for byte — at any worker count, and across a kill/resume.
// `make campaign-corpus-check` enforces the same contract through the
// benchtables binary.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"satin/internal/campaign"
)

func smokeCampaign(t *testing.T) campaign.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "campaigns", "smoke.json"))
	if err != nil {
		t.Fatalf("reading smoke campaign: %v", err)
	}
	c, err := campaign.Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func smokeGolden(t *testing.T) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "campaigns", "smoke.result.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	return want
}

func TestCampaignCorpusReproducesGolden(t *testing.T) {
	c := smokeCampaign(t)
	path := filepath.Join(t.TempDir(), "smoke.result")
	res, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		Workers:   4,
		SpecTrial: RunSpecTrial,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Finalized {
		t.Fatal("smoke campaign did not finalize")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, smokeGolden(t)) {
		t.Errorf("campaign run drifted from testdata/campaigns/smoke.result.golden (%d bytes vs %d); regenerate with benchtables -campaign if the drift is intentional", len(got), len(smokeGolden(t)))
	}
}

// TestCampaignCorpusResumeIdentity: stopping the smoke campaign part-way
// and resuming with a different worker count still lands exactly on the
// committed golden.
func TestCampaignCorpusResumeIdentity(t *testing.T) {
	c := smokeCampaign(t)
	path := filepath.Join(t.TempDir(), "smoke.result")
	first, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		Workers:   8,
		MaxCells:  7,
		SpecTrial: RunSpecTrial,
	})
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if first.Finalized {
		t.Fatal("partial run finalized early")
	}
	second, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		Workers:   1,
		SpecTrial: RunSpecTrial,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !second.Finalized {
		t.Fatal("resume did not finalize")
	}
	if second.NewlyDone != len(second.Results)-7 {
		t.Fatalf("resume reran cells: newly done %d of %d total", second.NewlyDone, len(second.Results))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, smokeGolden(t)) {
		t.Errorf("resumed campaign drifted from the committed golden")
	}
}
