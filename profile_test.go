package satin

// Facade-level tests for the causal span profiler: attaching it must be
// invisible to every existing output (the golden timeline and stream
// exports), while its own derived views — attribution, Chrome trace, trace
// diff — must be valid and deterministic.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestProfilerDetachedByDefault: scenarios built without WithProfiling have
// a nil handle, and the nil handle is usable.
func TestProfilerDetachedByDefault(t *testing.T) {
	sc := goldenScenario(t)
	if p := sc.Profiler(); p != nil {
		t.Fatal("profiler attached without WithProfiling(true)")
	}
	sc.RunToCompletion()
	if n := sc.Profiler().SpanCount(); n != 0 {
		t.Fatalf("nil profiler reports %d spans", n)
	}
}

// TestProfilingPreservesGoldens: the golden timeline must be byte-identical
// with the profiler attached — it subscribes and observes but never
// publishes or schedules.
func TestProfilingPreservesGoldens(t *testing.T) {
	sc := goldenScenario(t, WithProfiling(true))
	var stream bytes.Buffer
	sink, err := NewStreamSink(&stream, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	sc.RunToCompletion()
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	var timeline bytes.Buffer
	if err := sc.Timeline().WriteText(&timeline); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	wantTimeline, err := os.ReadFile(filepath.Join("testdata", "timeline_seed1.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(timeline.Bytes(), wantTimeline) {
		t.Fatal("timeline drifted with profiler attached")
	}
	wantStream, err := os.ReadFile(filepath.Join("testdata", "trace_seed1.jsonl.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(stream.Bytes(), wantStream) {
		t.Fatal("JSONL stream drifted with profiler attached")
	}
}

// TestProfilerSpansAndResidency: the attached profiler records the run's
// spans and its attribution partitions elapsed time exactly.
func TestProfilerSpansAndResidency(t *testing.T) {
	sc := goldenScenario(t, WithProfiling(true))
	sc.RunToCompletion()
	p := sc.Profiler()
	if p == nil {
		t.Fatal("WithProfiling(true) left no profiler")
	}
	if p.SpanCount() == 0 {
		t.Fatal("profiler recorded no spans")
	}
	rep := sc.Report()
	sum := p.Summary(rep.Elapsed)
	if err := sum.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
	if sum.Rounds != rep.SATINRounds {
		t.Fatalf("profiler counted %d rounds, report says %d", sum.Rounds, rep.SATINRounds)
	}
	if sum.WorldSwitches == 0 || sum.Chunks == 0 {
		t.Fatalf("missing span kinds: %d switches, %d chunks", sum.WorldSwitches, sum.Chunks)
	}
	if len(sum.Windows) == 0 {
		t.Fatal("no evasion windows recorded with the fast evader active")
	}
	if _, ok := sum.RaceMargin(); !ok {
		t.Fatal("race margin not observable despite rounds and windows")
	}
	if sum.Render() != sum.Render() {
		t.Fatal("summary render not deterministic")
	}
}

// TestProfilerChromeExportValid: the facade's Chrome trace passes our
// Perfetto-shape validator.
func TestProfilerChromeExportValid(t *testing.T) {
	sc := goldenScenario(t, WithProfiling(true))
	sc.RunToCompletion()
	var buf bytes.Buffer
	if err := sc.Profiler().WriteChromeTrace(&buf, sc.Report().Elapsed); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("chrome trace empty")
	}
}

// TestSelfDiffIdentical: two identically-seeded runs stream identical
// traces, and DiffTraces says so.
func TestSelfDiffIdentical(t *testing.T) {
	capture := func() []TimelineEvent {
		sc := goldenScenario(t)
		sc.RunToCompletion()
		return sc.Timeline().Events()
	}
	a, b := capture(), capture()
	if err := CheckTraceOrdered(a); err != nil {
		t.Fatalf("timeline out of order: %v", err)
	}
	rep := DiffTraces(a, b)
	if !rep.Identical() {
		t.Fatalf("identically-seeded runs diverge:\n%s", rep.Render(0))
	}
}

// TestDiffSeparatesSeeds: different seeds must not diff as identical — the
// tool would be useless if they did.
func TestDiffSeparatesSeeds(t *testing.T) {
	runSeed := func(seed uint64) []TimelineEvent {
		cfg := DefaultConfig()
		cfg.Tgoal = 19 * 1e9
		cfg.MaxRounds = 19
		cfg.Seed = seed + 2
		sc, err := NewScenario(WithSeed(seed), WithSATIN(cfg), WithFastEvader(0, 0))
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		sc.RunToCompletion()
		return sc.Timeline().Events()
	}
	rep := DiffTraces(runSeed(1), runSeed(2))
	if rep.Identical() {
		t.Fatal("different seeds produced an identical diff")
	}
}

// TestMergeProfilesFacade: the facade merge is the internal merge.
func TestMergeProfilesFacade(t *testing.T) {
	sc := goldenScenario(t, WithProfiling(true))
	sc.RunToCompletion()
	one := sc.Profiler().Summary(sc.Report().Elapsed)
	merged := MergeProfiles([]ProfileSummary{one, one})
	if merged.Seeds != 2 || merged.Rounds != 2*one.Rounds {
		t.Fatalf("merge of two copies: seeds=%d rounds=%d, want 2/%d", merged.Seeds, merged.Rounds, 2*one.Rounds)
	}
	if err := merged.ResidencyCheck(); err != nil {
		t.Fatal(err)
	}
}
