package satin

// Differential tests for the spec path: for each conformance exemplar, the
// Scenario built from the committed spec file must be indistinguishable —
// streamed trace, timeline text, and summary report, byte for byte — from
// the Scenario the facade options build. This is the guarantee that lets
// flags, sweeps, and the future campaign engine all route through specs
// without re-validating the simulator.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// specScenario loads a committed corpus spec and builds its scenario.
func specScenario(t *testing.T, file string) (*Scenario, ScenarioSpec) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "specs", file))
	if err != nil {
		t.Fatalf("reading spec: %v", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", file, err)
	}
	sc, err := FromSpec(s)
	if err != nil {
		t.Fatalf("FromSpec(%s): %v", file, err)
	}
	return sc, s
}

// runScenario drives sc and returns its streamed JSONL trace, timeline
// text, and formatted report.
func runScenario(t *testing.T, sc *Scenario, drive func(*Scenario)) (trace, timeline, report string) {
	t.Helper()
	var out bytes.Buffer
	sink, err := NewStreamSink(&out, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	drive(sc)
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var tl bytes.Buffer
	if err := sc.Timeline().WriteText(&tl); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	rep := sc.Report()
	return out.String(), tl.String(), fmt.Sprintf("%+v", rep)
}

// TestFromSpecMatchesFacadeOptions is the differential satellite: per
// exemplar, facade-options scenario vs FromSpec scenario, byte-identical
// output.
func TestFromSpecMatchesFacadeOptions(t *testing.T) {
	twoScans := DefaultConfig()
	twoScans.Tgoal = 19 * time.Second
	twoScans.MaxRounds = 38
	twoScans.Seed = 3
	cases := []struct {
		file string
		opts func(t *testing.T) []Option
	}{
		{"clean.json", func(t *testing.T) []Option { return nil }},
		{"faulted.json", func(t *testing.T) []Option {
			return []Option{WithFaultPlan(faultedGoldenPlan(t))}
		}},
		{"two_scans.json", func(t *testing.T) []Option {
			return []Option{WithSATIN(twoScans)}
		}},
		{"scale_1.json", func(t *testing.T) []Option {
			return []Option{WithFaultPlan(ScaledFaultPlan(1))}
		}},
		{"scale_4.json", func(t *testing.T) []Option {
			return []Option{WithFaultPlan(ScaledFaultPlan(4))}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			facade := goldenScenario(t, tc.opts(t)...)
			fTrace, fTimeline, fReport := runScenario(t, facade, (*Scenario).RunToCompletion)
			specSc, s := specScenario(t, tc.file)
			sTrace, sTimeline, sReport := runScenario(t, specSc, func(sc *Scenario) { DriveSpec(sc, s) })
			if fTrace != sTrace {
				t.Errorf("trace diverges between facade options and FromSpec")
			}
			if fTimeline != sTimeline {
				t.Errorf("timeline diverges between facade options and FromSpec")
			}
			if fReport != sReport {
				t.Errorf("report diverges:\nfacade: %s\nspec:   %s", fReport, sReport)
			}
		})
	}
}

// TestRunSpecTrialMatchesReport pins the sweep trial's metric values to the
// scenario report for the clean exemplar.
func TestRunSpecTrialMatchesReport(t *testing.T) {
	sc, s := specScenario(t, "clean.json")
	DriveSpec(sc, s)
	rep := sc.Report()
	m, err := RunSpecTrial(s)
	if err != nil {
		t.Fatalf("RunSpecTrial: %v", err)
	}
	want := map[string]float64{
		"rounds":     float64(rep.SATINRounds),
		"full scans": float64(rep.FullScans),
		"alarms":     float64(rep.Alarms),
		"detected":   boolMetric(rep.Detected),
		"suspects":   float64(rep.Suspects),
		"hides":      float64(rep.Hides),
		"reinstalls": float64(rep.Reinstalls),
	}
	if len(m) != len(want) {
		t.Fatalf("metrics = %+v, want %d named values", m, len(want))
	}
	for _, sample := range m {
		if v, ok := want[sample.Name]; !ok || v != sample.Value {
			t.Errorf("metric %q = %v, want %v (known %v)", sample.Name, sample.Value, v, ok)
		}
	}
}

// TestInstantiateSpecSweep checks the template-seed contract end to end:
// instantiating the clean template at the golden seed reproduces the golden
// run, and a different seed diverges (the derived defense seed follows).
func TestInstantiateSpecSweep(t *testing.T) {
	_, tmpl := specScenario(t, "clean.json")
	base, err := RunSpecTrial(InstantiateSpec(tmpl, 1))
	if err != nil {
		t.Fatalf("RunSpecTrial(seed 1): %v", err)
	}
	again, err := RunSpecTrial(InstantiateSpec(tmpl, 1))
	if err != nil {
		t.Fatalf("RunSpecTrial(seed 1, rerun): %v", err)
	}
	if fmt.Sprintf("%v", base) != fmt.Sprintf("%v", again) {
		t.Errorf("same seed, different metrics: %v vs %v", base, again)
	}
	// A different seed must reach the run: its full trace diverges from the
	// golden seed's (metrics alone can coincide).
	traceAt := func(seed uint64) string {
		inst := InstantiateSpec(tmpl, seed)
		sc, err := FromSpec(inst)
		if err != nil {
			t.Fatalf("FromSpec(seed %d): %v", seed, err)
		}
		trace, _, _ := runScenario(t, sc, func(sc *Scenario) { DriveSpec(sc, inst) })
		return trace
	}
	if traceAt(1) == traceAt(2) {
		t.Error("seeds 1 and 2 produced identical traces — seed substitution is not reaching the run")
	}
}
