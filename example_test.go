package satin_test

import (
	"fmt"
	"time"

	"satin"
)

// The headline scenario: SATIN versus TZ-Evader. Every pass over the
// attacked area raises an alarm even though the evader detects and reacts
// to every single round.
func Example() {
	cfg := satin.DefaultConfig()
	cfg.Tgoal = 19 * time.Second // tp = 1 s for a quick demo
	cfg.MaxRounds = 38           // two full kernel scans

	sc, err := satin.NewScenario(
		satin.WithSeed(42),
		satin.WithSATIN(cfg),
		satin.WithFastEvader(0, satin.DefaultThreshold),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sc.RunToCompletion()
	fmt.Printf("rounds: %d\n", len(sc.SATIN().Rounds()))
	fmt.Printf("alarms: %d\n", len(sc.SATIN().Alarms()))
	// Output:
	// rounds: 38
	// alarms: 2
}

// The baseline story: the same evader walks straight past a randomized
// whole-kernel checker.
func ExampleNewScenario_baseline() {
	sc, err := satin.NewScenario(
		satin.WithSeed(7),
		satin.WithBaseline(satin.BaselineConfig{
			Period:          4 * time.Second,
			RandomizePeriod: true,
			Selection:       satin.RandomCore,
			Technique:       satin.DirectHash,
			MaxRounds:       4,
		}),
		satin.WithFastEvader(0, 0),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sc.RunToCompletion()
	clean := 0
	for _, o := range sc.Baseline().Outcomes() {
		if o.Clean {
			clean++
		}
	}
	fmt.Printf("evaded %d of %d checks\n", clean, len(sc.Baseline().Outcomes()))
	// Output:
	// evaded 4 of 4 checks
}
