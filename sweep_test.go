package satin

import (
	"errors"
	"testing"
	"time"
)

// scenarioTrial builds one quick SATIN-vs-evader scenario (one full scan at
// tp = 1 s) and reports its alarm and round counts.
func scenarioTrial(seed uint64) (SweepMetrics, error) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	cfg.Seed = seed + 2
	sc, err := NewScenario(WithSeed(seed), WithSATIN(cfg), WithFastEvader(0, 0))
	if err != nil {
		return nil, err
	}
	sc.RunToCompletion()
	m := SweepMetrics{}.Add("alarms", float64(len(sc.SATIN().Alarms())))
	return m.Add("rounds", float64(len(sc.SATIN().Rounds()))), nil
}

func TestRunSeedsFacade(t *testing.T) {
	sw, err := RunSeeds("satin vs evader", 11, 4, 0, scenarioTrial)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 0 {
		t.Fatalf("failures: %+v", sw.Failures)
	}
	if got := sw.Seeds; len(got) != 4 || got[0] != 11 || got[3] != 14 {
		t.Fatalf("Seeds = %v, want 11..14", got)
	}
	// One full scan checks area 14 once; the evader loses that race in
	// every universe, so each seed reports exactly one alarm.
	if d := sw.Dist("alarms"); d.Min != 1 || d.Max != 1 {
		t.Errorf("alarms over seeds = %+v, want constant 1", d)
	}
	if d := sw.Dist("rounds"); d.Min != 19 || d.Max != 19 {
		t.Errorf("rounds over seeds = %+v, want constant 19", d)
	}
}

func TestDeterminismRunSeedsAcrossWorkers(t *testing.T) {
	one, err := RunSeeds("det", 3, 3, 1, scenarioTrial)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunSeeds("det", 3, 3, 8, scenarioTrial)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := one.Render(), many.Render(); a != b {
		t.Errorf("workers=1 and workers=8 disagree:\n%s\nvs\n%s", a, b)
	}
}

func TestRunSeedsReportsTrialErrors(t *testing.T) {
	sw, err := RunSeeds("flaky", 0, 3, 2, func(seed uint64) (SweepMetrics, error) {
		if seed == 1 {
			return nil, errors.New("synthetic")
		}
		return SweepMetrics{}.Add("v", 1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Failures) != 1 || sw.Failures[0].Seed != 1 {
		t.Fatalf("Failures = %+v, want seed 1", sw.Failures)
	}
}
