// Command tracediff aligns two streamed JSONL trace exports and reports
// their divergence: the first structural mismatch (event kind/core/area out
// of order or missing) and per-(kind, core, area) timing deltas. Exit code
// is 0 when the traces agree within the budget, 1 otherwise — so CI can
// assert "this run reproduces that run" in one line.
//
// Usage:
//
//	tracediff a.jsonl b.jsonl              # exact comparison
//	tracediff -budget 1ms a.jsonl b.jsonl  # tolerate up to 1ms of skew per span
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"satin"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	fs.SetOutput(out)
	budget := fs.Duration("budget", 0, "largest per-span timing divergence tolerated (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("need exactly two trace files, got %d", fs.NArg())
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := satin.DiffTraces(a, b)
	fmt.Fprint(out, rep.Render(*budget))
	if !rep.WithinBudget(*budget) {
		return fmt.Errorf("traces %s and %s diverge beyond budget %v", fs.Arg(0), fs.Arg(1), *budget)
	}
	return nil
}

// readTrace loads one JSONL trace export.
func readTrace(path string) ([]satin.TimelineEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	events, err := satin.ReadTraceJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return events, nil
}
