package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const traceA = `{"at_ns":1000,"kind":"round","core":0,"area":1}
{"at_ns":2000,"kind":"round","core":0,"area":2}
`

// traceShifted is traceA with the second event 500ns late.
const traceShifted = `{"at_ns":1000,"kind":"round","core":0,"area":1}
{"at_ns":2500,"kind":"round","core":0,"area":2}
`

func TestTracediffIdentical(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	var out strings.Builder
	if err := run([]string{a, a}, &out); err != nil {
		t.Fatalf("self-diff failed: %v", err)
	}
	if !strings.Contains(out.String(), "zero divergence") {
		t.Errorf("missing zero-divergence line:\n%s", out.String())
	}
}

func TestTracediffBudget(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	b := writeTrace(t, dir, "b.jsonl", traceShifted)

	var out strings.Builder
	if err := run([]string{a, b}, &out); err == nil {
		t.Fatal("500ns shift passed a zero budget")
	}
	out.Reset()
	if err := run([]string{"-budget", "1us", a, b}, &out); err != nil {
		t.Fatalf("500ns shift failed a 1µs budget: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS verdict:\n%s", out.String())
	}
}

func TestTracediffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.jsonl", traceA)
	var out strings.Builder
	if err := run([]string{a}, &out); err == nil {
		t.Fatal("one file accepted")
	}
	if err := run([]string{a, filepath.Join(dir, "missing.jsonl")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
