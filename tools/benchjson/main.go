// Command benchjson merges two `go test -bench` outputs — a committed
// baseline and a fresh run — into a machine-readable benchmark artifact
// (BENCH_*.json). It exists so performance claims in this repository are
// reproducible numbers, not prose: the baseline text is checked in next to
// the goldens, and re-running `make bench-json` regenerates the artifact
// with the current tree's numbers and the derived speedups.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark result.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Entry pairs baseline and current samples for one benchmark.
type Entry struct {
	Name     string  `json:"name"`
	Baseline *Sample `json:"baseline,omitempty"`
	Current  *Sample `json:"current,omitempty"`
	// SpeedupNs is baseline ns/op divided by current ns/op.
	SpeedupNs float64 `json:"speedup_ns_per_op,omitempty"`
	// AllocsReductionPct is the percentage drop in allocs/op vs baseline.
	AllocsReductionPct float64 `json:"allocs_reduction_pct,omitempty"`
}

// Artifact is the emitted JSON document.
type Artifact struct {
	Tool        string  `json:"tool"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Description string  `json:"description"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// parseBench extracts benchmark samples from `go test -bench` output. Lines
// that are not benchmark results are ignored. The per-GOMAXPROCS suffix
// (Benchmark-8) is stripped so names compare across machines.
func parseBench(path string) (map[string]*Sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]*Sample)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := &Sample{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: bad value %q for %s", path, fields[i], name)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			case "MB/s":
				// throughput is derivable from ns/op; skip
			default:
				if s.Extra == nil {
					s.Extra = make(map[string]float64)
				}
				s.Extra[unit] = v
			}
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = s // last sample wins if -count > 1
	}
	return out, order, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "", "committed `go test -bench` output to compare against")
	currentPath := flag.String("current", "", "fresh `go test -bench` output")
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	desc := flag.String("desc", "", "one-line description embedded in the artifact")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -current is required")
		os.Exit(2)
	}
	current, order, err := parseBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in", *currentPath)
		os.Exit(1)
	}
	baseline := map[string]*Sample{}
	if *baselinePath != "" {
		baseline, _, err = parseBench(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	art := Artifact{
		Tool:        "tools/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Description: *desc,
	}
	for _, name := range order {
		e := Entry{Name: name, Current: current[name]}
		if b, ok := baseline[name]; ok {
			e.Baseline = b
			if e.Current.NsPerOp > 0 {
				e.SpeedupNs = b.NsPerOp / e.Current.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				e.AllocsReductionPct = 100 * (1 - e.Current.AllocsPerOp/b.AllocsPerOp)
			}
		}
		art.Benchmarks = append(art.Benchmarks, e)
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
