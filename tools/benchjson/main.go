// Command benchjson turns `go test -bench` output into machine-readable
// benchmark artifacts (BENCH_*.json) and checks fresh runs against them.
//
// Merge mode (the default) pairs a committed baseline text with a fresh
// run and emits the artifact with derived speedups. It exists so
// performance claims in this repository are reproducible numbers, not
// prose: the baseline text is checked in next to the goldens, and
// re-running `make bench-json` regenerates the artifact with the current
// tree's numbers.
//
// Compare mode (-compare) diffs a fresh run against one or more committed
// artifacts, reporting the per-benchmark ns/op delta and flagging
// regressions past -threshold. It is wired into the non-blocking CI bench
// job (`make bench-compare`): numbers vary with runner hardware, so a
// regression report is a signal to look, never a merge gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark result.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Entry pairs baseline and current samples for one benchmark.
type Entry struct {
	Name     string  `json:"name"`
	Baseline *Sample `json:"baseline,omitempty"`
	Current  *Sample `json:"current,omitempty"`
	// SpeedupNs is baseline ns/op divided by current ns/op.
	SpeedupNs float64 `json:"speedup_ns_per_op,omitempty"`
	// AllocsReductionPct is the percentage drop in allocs/op vs baseline.
	AllocsReductionPct float64 `json:"allocs_reduction_pct,omitempty"`
}

// Artifact is the emitted JSON document.
type Artifact struct {
	Tool        string  `json:"tool"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Description string  `json:"description"`
	Benchmarks  []Entry `json:"benchmarks"`
}

// parseBench extracts benchmark samples from `go test -bench` output. Lines
// that are not benchmark results are ignored. The per-GOMAXPROCS suffix
// (Benchmark-8) is stripped so names compare across machines.
func parseBench(path string) (map[string]*Sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]*Sample)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := &Sample{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: bad value %q for %s", path, fields[i], name)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			case "MB/s":
				// throughput is derivable from ns/op; skip
			default:
				if s.Extra == nil {
					s.Extra = make(map[string]float64)
				}
				s.Extra[unit] = v
			}
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = s // last sample wins if -count > 1
	}
	return out, order, sc.Err()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(out)
	baselinePath := fs.String("baseline", "", "committed `go test -bench` output to compare against")
	currentPath := fs.String("current", "", "fresh `go test -bench` output")
	outPath := fs.String("out", "", "output JSON path (default stdout)")
	desc := fs.String("desc", "", "one-line description embedded in the artifact")
	compare := fs.String("compare", "", "comma-separated committed BENCH_*.json artifacts to diff the fresh -current run against")
	threshold := fs.Float64("threshold", 25, "compare mode: flag a benchmark whose ns/op grew more than this percentage over the artifact's number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	current, order, err := parseBench(*currentPath)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines in %s", *currentPath)
	}
	if *compare != "" {
		return runCompare(out, strings.Split(*compare, ","), current, *threshold)
	}

	baseline := map[string]*Sample{}
	if *baselinePath != "" {
		baseline, _, err = parseBench(*baselinePath)
		if err != nil {
			return err
		}
	}
	art := Artifact{
		Tool:        "tools/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Description: *desc,
	}
	for _, name := range order {
		e := Entry{Name: name, Current: current[name]}
		if b, ok := baseline[name]; ok {
			e.Baseline = b
			if e.Current.NsPerOp > 0 {
				e.SpeedupNs = b.NsPerOp / e.Current.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				e.AllocsReductionPct = 100 * (1 - e.Current.AllocsPerOp/b.AllocsPerOp)
			}
		}
		art.Benchmarks = append(art.Benchmarks, e)
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		_, err := out.Write(buf)
		return err
	}
	return os.WriteFile(*outPath, buf, 0o644)
}

// runCompare diffs the fresh samples against each committed artifact's
// "current" numbers (the tree the artifact was generated on) and reports
// per-benchmark deltas. The returned error — one line naming every
// regression — is the CI signal; benchmarks the fresh run did not execute
// are reported but never count as regressions, so a narrowed bench sweep
// does not cry wolf.
func runCompare(out io.Writer, artifactPaths []string, fresh map[string]*Sample, thresholdPct float64) error {
	var regressions []string
	for _, path := range artifactPaths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var art Artifact
		if err := json.Unmarshal(data, &art); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "compare vs %s (threshold +%.0f%% ns/op):\n", path, thresholdPct)
		compared := 0
		for _, e := range art.Benchmarks {
			if e.Current == nil || e.Current.NsPerOp <= 0 {
				continue
			}
			s, ok := fresh[e.Name]
			if !ok {
				fmt.Fprintf(out, "  %-40s not in current run\n", e.Name)
				continue
			}
			compared++
			deltaPct := 100 * (s.NsPerOp/e.Current.NsPerOp - 1)
			verdict := "ok"
			if deltaPct > thresholdPct {
				verdict = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s (%+.1f%% vs %s)", e.Name, deltaPct, path))
			}
			fmt.Fprintf(out, "  %-40s %12.0f ns/op vs %12.0f ns/op  %+7.1f%%  %s\n",
				e.Name, s.NsPerOp, e.Current.NsPerOp, deltaPct, verdict)
		}
		fmt.Fprintf(out, "  %d benchmark(s) compared\n", compared)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s): %s", len(regressions), strings.Join(regressions, "; "))
	}
	return nil
}
