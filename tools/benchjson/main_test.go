package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
BenchmarkDetection-8            5    2000000 ns/op    1024 B/op    10 allocs/op
BenchmarkShardedCampaign/workers=4-8    3    5000000 ns/op    2048 B/op    20 allocs/op
ok   satin  1.2s
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeArtifact: default mode pairs baseline and current and derives
// the ns/op speedup.
func TestMergeArtifact(t *testing.T) {
	dir := t.TempDir()
	baseline := writeFile(t, dir, "base.txt",
		"BenchmarkDetection-8  5  4000000 ns/op  1024 B/op  20 allocs/op\n")
	current := writeFile(t, dir, "cur.txt", benchText)
	outPath := filepath.Join(dir, "BENCH_TEST.json")
	var out bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-current", current, "-out", outPath, "-desc", "t"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("artifact has %d benchmarks, want 2", len(art.Benchmarks))
	}
	det := art.Benchmarks[0]
	if det.Name != "Detection" || det.SpeedupNs != 2 || det.AllocsReductionPct != 50 {
		t.Fatalf("Detection entry = %+v, want 2x speedup and 50%% fewer allocs", det)
	}
	if art.Benchmarks[1].Name != "ShardedCampaign/workers=4" {
		t.Fatalf("second entry = %q", art.Benchmarks[1].Name)
	}
}

// compareFixture builds one committed artifact and returns its path.
func compareFixture(t *testing.T, dir string, ns float64) string {
	t.Helper()
	art := Artifact{
		Tool: "tools/benchjson",
		Benchmarks: []Entry{
			{Name: "Detection", Current: &Sample{NsPerOp: ns}},
			{Name: "Absent", Current: &Sample{NsPerOp: 1}},
		},
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return writeFile(t, dir, "BENCH_FIX.json", string(data))
}

// TestCompareWithinThreshold: a fresh run inside the threshold passes, and
// benchmarks the fresh sweep skipped are reported but not failed on.
func TestCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	artifact := compareFixture(t, dir, 1900000) // fresh 2000000 = +5.3%
	current := writeFile(t, dir, "cur.txt", benchText)
	var out bytes.Buffer
	if err := run([]string{"-compare", artifact, "-current", current, "-threshold", "25"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "Detection") || !strings.Contains(text, "ok") {
		t.Fatalf("compare output:\n%s", text)
	}
	if !strings.Contains(text, "Absent") || !strings.Contains(text, "not in current run") {
		t.Fatalf("missing-benchmark report absent:\n%s", text)
	}
	if !strings.Contains(text, "1 benchmark(s) compared") {
		t.Fatalf("compared count absent:\n%s", text)
	}
}

// TestCompareFlagsRegression: growth past the threshold is an error naming
// the benchmark.
func TestCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	artifact := compareFixture(t, dir, 1000000) // fresh 2000000 = +100%
	current := writeFile(t, dir, "cur.txt", benchText)
	var out bytes.Buffer
	err := run([]string{"-compare", artifact, "-current", current, "-threshold", "25"}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 regression(s): Detection") {
		t.Fatalf("error = %v, want a Detection regression", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("compare output lacks REGRESSION flag:\n%s", out.String())
	}
}

// TestRunRejections: missing -current and empty bench files fail cleanly.
func TestRunRejections(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run without -current succeeded")
	}
	empty := writeFile(t, t.TempDir(), "empty.txt", "no benchmarks here\n")
	if err := run([]string{"-current", empty}, &out); err == nil {
		t.Fatal("run on an empty bench file succeeded")
	}
}
