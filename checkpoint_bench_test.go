package satin

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"satin/internal/campaign"
)

// benchSharedPrefixSweep measures one full 16-cell campaign whose cells
// differ only in a late DVFS step: a 180.5s fault-free prefix ahead of a
// ~0.5s divergent suffix. With forking off every cell simulates the whole
// 181s horizon; with forking on the prefix runs once and each cell only its
// suffix — O(prefix + K×suffix) instead of O(K×(prefix+suffix)). Workers is
// pinned to 1 so the timer sees the algorithmic cost, not pool scheduling.
//
// The incremental hash cache is disabled: with it on, steady-state rounds
// are nearly free and every cell is bound by scenario construction, which a
// fork pays too — the prefix has to carry real per-round work for its reuse
// to matter. Fork identity in this configuration is pinned by
// TestForkIdentityHashCacheOff.
func benchSharedPrefixSweep(b *testing.B, fork bool) {
	tmpl := ckptSpec(181*time.Second, "")
	cacheOff := false
	tmpl.HashCache = &cacheOff
	faults := make([]string, 16)
	for i := 1; i < len(faults); i++ {
		faults[i] = fmt.Sprintf("dvfs:at=180.5s,factor=%.2f", 0.50+0.03*float64(i))
	}
	c := campaign.Spec{
		Version:  campaign.CurrentVersion,
		Name:     "shared-prefix-bench",
		Scenario: &tmpl,
		Faults:   faults,
		Seeds:    campaign.SeedRange{Base: 1, Count: 1},
	}
	opt := campaign.RunOptions{Workers: 1, SpecTrial: RunSpecTrial}
	if fork {
		opt.GroupKey = CheckpointGroupKey
		opt.GroupTrial = RunCheckpointGroup
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("sweep-%d.result", i))
		res, err := campaign.Run(context.Background(), c, path, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finalized {
			b.Fatal("campaign did not finalize")
		}
	}
}

// BenchmarkSharedPrefixSweepScratch is the baseline: every cell from scratch.
func BenchmarkSharedPrefixSweepScratch(b *testing.B) { benchSharedPrefixSweep(b, false) }

// BenchmarkSharedPrefixSweepForked forks all 16 cells from one checkpoint.
func BenchmarkSharedPrefixSweepForked(b *testing.B) { benchSharedPrefixSweep(b, true) }
