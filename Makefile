GO ?= go

.PHONY: all build vet test race determinism sweep-check trace-check profile-smoke sensitivity-smoke spec-corpus-check spec-fuzz-smoke campaign-smoke campaign-corpus-check campaign-fuzz-smoke checkpoint-smoke serve-smoke docs-check cover bench bench-json bench-smoke bench-compare profile ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the runner's worker pool is the
# only concurrent code in the repository, but everything it fans out must
# stay race-free too.
race:
	$(GO) test -race ./...

# The determinism regression from ISSUE 1: multi-seed sweeps must produce
# byte-identical output with workers=1 and workers=8, and sweep seed 1 must
# match the serial drivers. Run under -race so the worker pool itself is
# exercised, not just its output.
determinism:
	$(GO) test -race -run 'TestDeterminism' ./internal/runner ./internal/experiment . ./cmd/benchtables

# End-to-end sweep check: a multi-seed detection run completes and is
# worker-count invariant at the CLI level.
sweep-check:
	$(GO) run ./cmd/benchtables -detection -seeds 8 -workers 8 > /tmp/sweep8.txt
	$(GO) run ./cmd/benchtables -detection -seeds 8 -workers 1 > /tmp/sweep1.txt
	cmp /tmp/sweep1.txt /tmp/sweep8.txt
	@echo "sweep output is worker-count invariant"

# Trace-export smoke: stream a run's events to JSONL, then validate the
# file parses event by event.
trace-check:
	$(GO) run ./cmd/satin-sim -scans 1 -tp 1s -trace-out /tmp/trace.jsonl > /dev/null
	$(GO) run ./cmd/satin-sim -lint-trace /tmp/trace.jsonl

# Profiler smoke: run with the span profiler attached, emit every derived
# artifact (JSONL trace, Chrome/Perfetto trace, attribution table), lint
# both trace formats, and require a self-diff to report zero divergence.
profile-smoke:
	$(GO) run ./cmd/satin-sim -scans 1 -tp 1s \
		-trace-out /tmp/profile_smoke.jsonl \
		-chrome-trace /tmp/profile_smoke_chrome.json \
		-profile-out /tmp/profile_smoke_attribution.txt > /dev/null
	$(GO) run ./cmd/satin-sim -lint-trace /tmp/profile_smoke.jsonl
	$(GO) run ./cmd/satin-sim -lint-chrome /tmp/profile_smoke_chrome.json
	$(GO) run ./tools/tracediff /tmp/profile_smoke.jsonl /tmp/profile_smoke.jsonl
	@echo "profiler artifacts validate; self-diff has zero divergence"

# Fault-injection sensitivity smoke: a reduced sweep (3 magnitudes,
# 2 seeds, 4 full scans) must complete and still show detection degrading
# from 100% at magnitude 0 — the shape assertions live in
# internal/experiment's sensitivity tests; this exercises the CLI path.
sensitivity-smoke:
	$(GO) run ./cmd/benchtables -only=sensitivity -seeds 2 -quick

# Conformance corpus through the binary: every manifest row's spec must
# reproduce its committed golden byte for byte via satin-sim -spec, and
# every committed spec must already be canonical (-dump-spec is the
# identity on it). The same contract runs in-process in spec_corpus_test.go;
# this target is the CLI-level proof.
spec-corpus-check:
	$(GO) build -o /tmp/satin-sim ./cmd/satin-sim
	@set -e; while read -r spec kind golden; do \
		case "$$spec" in ''|'#'*) continue;; esac; \
		case "$$kind" in \
			jsonl) out=/tmp/spec_corpus_out.jsonl; /tmp/satin-sim -spec $$spec -trace-out $$out > /dev/null;; \
			csv) out=/tmp/spec_corpus_out.csv; /tmp/satin-sim -spec $$spec -trace-out $$out > /dev/null;; \
			timeline) out=/tmp/spec_corpus_out.txt; /tmp/satin-sim -spec $$spec -timeline $$out > /dev/null;; \
			*) echo "unknown export kind $$kind in corpus.manifest"; exit 1;; \
		esac; \
		cmp $$out $$golden || { echo "$$spec ($$kind) drifted from $$golden"; exit 1; }; \
		echo "$$spec ($$kind) == $$golden"; \
	done < testdata/specs/corpus.manifest
	@set -e; for spec in testdata/specs/*.json; do \
		/tmp/satin-sim -spec $$spec -dump-spec > /tmp/spec_canonical.json; \
		cmp /tmp/spec_canonical.json $$spec || { echo "$$spec is not canonical; regenerate with: satin-sim -spec $$spec -dump-spec"; exit 1; }; \
	done
	@echo "spec corpus reproduces every golden; all committed specs are canonical"

# Short fuzz run over the spec parser: any input that parses and validates
# must canonicalize and build a scenario without panicking. The committed
# corpus seeds the fuzzer.
spec-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzParseSpec$$' -fuzztime 20s ./internal/spec

# Campaign end-to-end smoke through the binary: the committed smoke grid
# (2 evaders × 2 round counts × 2 fault plans × 2 seeds = 16 cells) run
# uninterrupted at 1 worker must be byte-identical to the same campaign run
# at 8 workers, killed after 7 cells (-campaign-max-cells, the deterministic
# kill), and resumed at 3 workers. This is the ISSUE acceptance gate for the
# checkpoint format: completion order never leaks into the finalized file.
campaign-smoke:
	$(GO) build -o /tmp/benchtables ./cmd/benchtables
	rm -f /tmp/campaign_serial.result /tmp/campaign_resumed.result
	/tmp/benchtables -campaign testdata/campaigns/smoke.json -campaign-out /tmp/campaign_serial.result -workers 1 > /dev/null
	/tmp/benchtables -campaign testdata/campaigns/smoke.json -campaign-out /tmp/campaign_resumed.result -workers 8 -campaign-max-cells 7 > /dev/null
	/tmp/benchtables -campaign testdata/campaigns/smoke.json -campaign-out /tmp/campaign_resumed.result -workers 3 > /dev/null
	cmp /tmp/campaign_serial.result /tmp/campaign_resumed.result
	@echo "campaign result is worker-count invariant and kill/resume lands on the same bytes"

# Campaign corpus through the binary: the committed smoke campaign must
# reproduce its committed result file byte for byte. The same contract runs
# in-process in campaign_corpus_test.go; this target is the CLI-level proof
# (the sibling of spec-corpus-check for the campaign layer).
campaign-corpus-check:
	$(GO) build -o /tmp/benchtables ./cmd/benchtables
	rm -f /tmp/campaign_corpus.result
	/tmp/benchtables -campaign testdata/campaigns/smoke.json -campaign-out /tmp/campaign_corpus.result -workers 4 > /dev/null
	cmp /tmp/campaign_corpus.result testdata/campaigns/smoke.result.golden || { echo "smoke campaign drifted from testdata/campaigns/smoke.result.golden"; exit 1; }
	@echo "campaign corpus reproduces its golden result file"

# Checkpoint/fork smoke through the CLIs: snapshot the committed fault-free
# prefix at its horizon, fork four members off it (unfaulted, two DVFS
# factors, a hotplug window), and require each forked trace byte-identical
# to its from-scratch twin — tracediff for the structural verdict, cmp for
# the byte-level one. See docs/CHECKPOINT.md.
checkpoint-smoke:
	$(GO) build -o /tmp/satin-sim ./cmd/satin-sim
	$(GO) build -o /tmp/satin-tracediff ./tools/tracediff
	rm -rf /tmp/satin_ckpt_smoke && mkdir -p /tmp/satin_ckpt_smoke
	/tmp/satin-sim -spec testdata/checkpoint/prefix.json -checkpoint-out /tmp/satin_ckpt_smoke/prefix.ckpt > /dev/null
	@fail=0; for m in clean dvfs-slow dvfs-fast hotplug; do \
		/tmp/satin-sim -spec testdata/checkpoint/member-$$m.json -resume-from /tmp/satin_ckpt_smoke/prefix.ckpt -trace-out /tmp/satin_ckpt_smoke/fork-$$m.jsonl > /dev/null || exit 1; \
		/tmp/satin-sim -spec testdata/checkpoint/member-$$m.json -trace-out /tmp/satin_ckpt_smoke/scratch-$$m.jsonl > /dev/null || exit 1; \
		/tmp/satin-tracediff /tmp/satin_ckpt_smoke/fork-$$m.jsonl /tmp/satin_ckpt_smoke/scratch-$$m.jsonl > /dev/null || { echo "member $$m: forked trace diverges from from-scratch"; fail=1; }; \
		cmp /tmp/satin_ckpt_smoke/fork-$$m.jsonl /tmp/satin_ckpt_smoke/scratch-$$m.jsonl || { echo "member $$m: forked trace bytes differ"; fail=1; }; \
	done; exit $$fail
	@echo "four forked members reproduce their from-scratch traces byte for byte"

# Sharded-campaign smoke: a satin-serve coordinator plus two worker
# processes drain the committed smoke campaign over the lease protocol, and
# the merged result must be byte-identical to the committed single-process
# golden — the cross-process half of the campaign-corpus contract.
# Required /metrics families: the smoke run fails if the coordinator stops
# exposing any of these (eager registration means they exist even at zero).
SERVE_SMOKE_METRICS := \
	satin_leases_granted_total satin_leases_expired_total \
	satin_leases_renewed_total satin_lease_stale_rejections_total \
	satin_uploads_verified_total satin_uploads_rejected_total \
	satin_merges_total satin_http_requests_total \
	satin_http_request_duration_seconds satin_job_cells_total \
	satin_job_cells_done satin_job_cells_per_second \
	satin_cell_duration_seconds satin_cells_forked_total \
	satin_cells_reported_total

serve-smoke:
	$(GO) build -o /tmp/satin-serve ./cmd/satin-serve
	$(GO) build -o /tmp/satin-sim ./cmd/satin-sim
	rm -rf /tmp/satin_serve_smoke && mkdir -p /tmp/satin_serve_smoke
	@set -e; \
	/tmp/satin-serve -listen 127.0.0.1:8397 -data /tmp/satin_serve_smoke/data & \
	server=$$!; trap 'kill $$server 2>/dev/null' EXIT; \
	for i in $$(seq 50); do /tmp/satin-serve -url http://127.0.0.1:8397 -status >/dev/null 2>&1 && break; sleep 0.1; done; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -submit testdata/campaigns/smoke.json -shards 2; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -worker -name w1 -dir /tmp/satin_serve_smoke/w1 2>/dev/null & \
	w1=$$!; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -metrics > /tmp/satin_serve_smoke/metrics_live.txt; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -worker -name w2 -dir /tmp/satin_serve_smoke/w2 2>/dev/null; \
	wait $$w1; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -watch c1; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -metrics > /tmp/satin_serve_smoke/metrics.txt; \
	for m in $(SERVE_SMOKE_METRICS); do \
		grep -q "^\# TYPE $$m " /tmp/satin_serve_smoke/metrics.txt \
			|| { echo "serve-smoke: /metrics is missing family $$m"; exit 1; }; \
	done; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -timeline c1 -timeline-out /tmp/satin_serve_smoke/timeline.json; \
	/tmp/satin-sim -lint-chrome /tmp/satin_serve_smoke/timeline.json; \
	/tmp/satin-serve -url http://127.0.0.1:8397 -result c1 -out /tmp/satin_serve_smoke/merged.result; \
	cmp /tmp/satin_serve_smoke/merged.result testdata/campaigns/smoke.result.golden
	@echo "serve-smoke OK: golden bytes unchanged with live /metrics+/healthz scrapes; all required metric families present; timeline passes the Chrome lint"

# Short fuzz run over the campaign parser, seeded from the committed
# campaigns: any input that parses and validates must canonicalize, expand
# to cells, and round-trip without panicking.
campaign-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzParseCampaign$$' -fuzztime 20s ./internal/campaign

# Docs stay in sync with the code: every internal package opens with a
# '// Package <name>' doc comment (so `go doc` gives a real answer at each
# layer), appears in ARCHITECTURE.md's package map, and every CLI flag the
# markdown docs show next to a binary name actually exists in that binary.
docs-check:
	@fail=0; for d in internal/*/; do \
		grep -qs '^// Package' $$d*.go || { echo "missing '// Package' doc comment in $$d"; fail=1; }; \
	done; exit $$fail
	@echo "all internal packages documented"
	@fail=0; for d in internal/*/; do \
		p=$$(basename $$d); \
		grep -q "\`$$p\`" ARCHITECTURE.md || { echo "internal/$$p missing from ARCHITECTURE.md's package map"; fail=1; }; \
	done; exit $$fail
	@echo "every internal package is in ARCHITECTURE.md's package map"
	@rm -rf /tmp/satin_docscheck && mkdir -p /tmp/satin_docscheck
	@$(GO) build -o /tmp/satin_docscheck ./cmd/...
	@fail=0; for bin in satin-sim benchtables tzevader satin-serve; do \
		/tmp/satin_docscheck/$$bin -h 2>&1 | grep -oE '^  -[a-z0-9-]+' | tr -d ' ' > /tmp/satin_docscheck/$$bin.flags; \
		for f in $$(grep -ohE "$$bin"'[^#`]*' README.md EXPERIMENTS.md docs/*.md | grep -oE ' -[a-z][a-z0-9-]*' | sort -u); do \
			grep -qx -- "$$f" /tmp/satin_docscheck/$$bin.flags || { echo "docs show $$bin $$f but the binary has no such flag"; fail=1; }; \
		done; \
	done; exit $$fail
	@echo "every documented CLI flag exists in its binary"

# Coverage summary across all packages.
cover:
	$(GO) test -cover ./...

# Full benchmark suite with allocation counts.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate BENCH_PR4.json: run the hot-path benchmarks on the current
# tree and merge them with the committed pre-overhaul baseline
# (testdata/bench_baseline_pr4.txt, captured at the parent commit of the
# hot-path PR on the same benchmark definitions).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkDetection$$|BenchmarkSensitivitySweep$$|BenchmarkSteadyStateRounds$$' -benchtime 5x -count 1 . | tee /tmp/bench_current_pr4.txt
	$(GO) run ./tools/benchjson -baseline testdata/bench_baseline_pr4.txt -current /tmp/bench_current_pr4.txt \
		-desc "hot-path overhaul: incremental hash cache + word-wide kernels + allocation-free scheduling vs pre-overhaul baseline" \
		-out BENCH_PR4.json
	@echo "wrote BENCH_PR4.json"
	# BENCH_PR5.json: the span profiler's attached overhead. Baseline is the
	# detection benchmark with the profiler detached
	# (testdata/bench_baseline_pr5.txt); current is the same workload with a
	# profiler attached, renamed so benchjson pairs the two rows.
	$(GO) test -run '^$$' -bench 'BenchmarkDetectionProfiled$$' -benchtime 5x -count 1 . \
		| sed 's/BenchmarkDetectionProfiled/BenchmarkDetection/' | tee /tmp/bench_current_pr5.txt
	$(GO) run ./tools/benchjson -baseline testdata/bench_baseline_pr5.txt -current /tmp/bench_current_pr5.txt \
		-desc "span profiler attached vs detached on the detection experiment (block span storage; detached profiler is 0 allocs/op by AllocsPerRun lock)" \
		-out BENCH_PR5.json
	@echo "wrote BENCH_PR5.json"
	# BENCH_PR8.json: shared-prefix sweep forking. Baseline runs all 16
	# cells of the sweep from scratch; current forks them from one prefix
	# checkpoint. Both sides run on the current tree (the toggle is
	# campaign.RunOptions grouping), renamed so benchjson pairs the rows.
	$(GO) test -run '^$$' -bench 'BenchmarkSharedPrefixSweepScratch$$' -benchtime 3x -count 1 . \
		| sed 's/BenchmarkSharedPrefixSweepScratch/BenchmarkSharedPrefixSweep/' | tee /tmp/bench_baseline_pr8.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSharedPrefixSweepForked$$' -benchtime 3x -count 1 . \
		| sed 's/BenchmarkSharedPrefixSweepForked/BenchmarkSharedPrefixSweep/' | tee /tmp/bench_current_pr8.txt
	$(GO) run ./tools/benchjson -baseline /tmp/bench_baseline_pr8.txt -current /tmp/bench_current_pr8.txt \
		-desc "16-cell shared-prefix sweep forked from one checkpoint vs every cell from scratch (hash cache off so the prefix carries real per-round work; identical result bytes either way)" \
		-out BENCH_PR8.json
	@echo "wrote BENCH_PR8.json"
	# BENCH_PR9.json: sharded cross-process campaign execution. Baseline
	# drains the campaign with one worker OS process over the satin-serve
	# lease protocol; current uses four. Both rows are renamed so benchjson
	# pairs them; the speedup is the machine's core headroom (≈4× with four
	# free cores, ≈1× on one — the merged bytes are identical either way).
	$(GO) test -run '^$$' -bench 'BenchmarkShardedCampaignWorkers1$$' -benchtime 3x -count 1 . \
		| sed 's/BenchmarkShardedCampaignWorkers1/BenchmarkShardedCampaign/' | tee /tmp/bench_baseline_pr9.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardedCampaignWorkers4$$' -benchtime 3x -count 1 . \
		| sed 's/BenchmarkShardedCampaignWorkers4/BenchmarkShardedCampaign/' | tee /tmp/bench_current_pr9.txt
	$(GO) run ./tools/benchjson -baseline /tmp/bench_baseline_pr9.txt -current /tmp/bench_current_pr9.txt \
		-desc "8-cell campaign drained by 4 worker OS processes vs 1 over the satin-serve lease protocol (byte-identical merged result; speedup tracks free cores, so regenerate on multi-core hardware for the headline number)" \
		-out BENCH_PR9.json
	@echo "wrote BENCH_PR9.json"

# Quick non-blocking benchmark smoke for CI: one short iteration of every
# benchmark, checking they still run — not their numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Diff a fresh 1x bench sweep against every committed BENCH_*.json:
# per-benchmark ns/op deltas, with growth past the threshold flagged as a
# regression. Wired into the non-blocking CI bench job — numbers vary with
# runner hardware, so this is a look-here signal, never a merge gate.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... | tee /tmp/bench_fresh.txt
	$(GO) run ./tools/benchjson -current /tmp/bench_fresh.txt \
		-compare $$(ls BENCH_*.json | paste -sd, -) -threshold 100

# CPU and heap profiles of the detection sweep benchmark, for digging into
# the simulator's hot path. Writes /tmp/satin_cpu.prof, /tmp/satin_mem.prof
# and the test binary /tmp/satin.test (pprof needs it to symbolize).
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkDetection$$' -benchtime 5x -count 1 \
		-cpuprofile /tmp/satin_cpu.prof -memprofile /tmp/satin_mem.prof -o /tmp/satin.test .
	@echo "inspect with: $(GO) tool pprof /tmp/satin.test /tmp/satin_cpu.prof"

ci: vet build test race determinism spec-corpus-check campaign-smoke campaign-corpus-check checkpoint-smoke serve-smoke docs-check
