GO ?= go

.PHONY: all build vet test race determinism sweep-check trace-check cover ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the runner's worker pool is the
# only concurrent code in the repository, but everything it fans out must
# stay race-free too.
race:
	$(GO) test -race ./...

# The determinism regression from ISSUE 1: multi-seed sweeps must produce
# byte-identical output with workers=1 and workers=8, and sweep seed 1 must
# match the serial drivers. Run under -race so the worker pool itself is
# exercised, not just its output.
determinism:
	$(GO) test -race -run 'TestDeterminism' ./internal/runner ./internal/experiment . ./cmd/benchtables

# End-to-end sweep check: a multi-seed detection run completes and is
# worker-count invariant at the CLI level.
sweep-check:
	$(GO) run ./cmd/benchtables -detection -seeds 8 -workers 8 > /tmp/sweep8.txt
	$(GO) run ./cmd/benchtables -detection -seeds 8 -workers 1 > /tmp/sweep1.txt
	cmp /tmp/sweep1.txt /tmp/sweep8.txt
	@echo "sweep output is worker-count invariant"

# Trace-export smoke: stream a run's events to JSONL, then validate the
# file parses event by event.
trace-check:
	$(GO) run ./cmd/satin-sim -scans 1 -tp 1s -trace-out /tmp/trace.jsonl > /dev/null
	$(GO) run ./cmd/satin-sim -lint-trace /tmp/trace.jsonl

# Coverage summary across all packages.
cover:
	$(GO) test -cover ./...

ci: vet build test race determinism
