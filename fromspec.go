package satin

import (
	"time"

	"satin/internal/spec"
)

// ScenarioSpec is the versioned, serializable description of one scenario —
// see internal/spec for the format contract. It is the artifact sweeps,
// the conformance corpus, and `satin-sim -spec` exchange.
type ScenarioSpec = spec.Spec

// ScenarioSpecVersion is the spec format this build reads and writes.
const ScenarioSpecVersion = spec.CurrentVersion

// Spec section types, re-exported so callers can assemble specs in Go
// without reaching into internal packages.
type (
	// SpecHardware selects the simulated board.
	SpecHardware = spec.Hardware
	// SpecDefense selects and tunes the introspection side.
	SpecDefense = spec.Defense
	// SpecSATINConfig is core.Config in serializable form.
	SpecSATINConfig = spec.SATINConfig
	// SpecBaselineConfig is introspect.BaselineConfig in serializable form.
	SpecBaselineConfig = spec.BaselineConfig
	// SpecEvader selects and tunes the attack side.
	SpecEvader = spec.Evader
	// SpecWorkload adds background interference.
	SpecWorkload = spec.Workload
	// SpecRun is the drive instruction.
	SpecRun = spec.Run
	// SpecExport lists artifact files a run writes.
	SpecExport = spec.Export
	// SpecDuration serializes as a Go duration string.
	SpecDuration = spec.Duration
)

// ParseSpec decodes a scenario spec from strict JSON (unknown keys and bad
// versions are errors). The result is not yet validated or canonical.
func ParseSpec(data []byte) (ScenarioSpec, error) { return spec.Parse(data) }

// ValidateSpec checks every semantic rule of a spec.
func ValidateSpec(s ScenarioSpec) error { return spec.Validate(s) }

// CanonicalizeSpec validates and normalizes a spec; see spec.Canonicalize.
func CanonicalizeSpec(s ScenarioSpec) (ScenarioSpec, error) { return spec.Canonicalize(s) }

// MarshalSpec renders a spec as indented JSON with a trailing newline.
func MarshalSpec(s ScenarioSpec) ([]byte, error) { return spec.Marshal(s) }

// InstantiateSpec stamps one sweep trial out of a template: a deep clone
// with the root seed replaced.
func InstantiateSpec(tmpl ScenarioSpec, seed uint64) ScenarioSpec {
	return spec.Instantiate(tmpl, seed)
}

// FromSpec canonicalizes the spec and assembles the Scenario it describes —
// the same Scenario the equivalent facade options build, a guarantee the
// differential golden tests enforce byte for byte. The run horizon and
// export switches are carried by the spec, not the Scenario; drive the
// returned Scenario with DriveSpec (or Run/RunToCompletion directly).
func FromSpec(s ScenarioSpec) (*Scenario, error) {
	c, err := spec.Canonicalize(s)
	if err != nil {
		return nil, err
	}
	opts := []Option{WithSeed(c.Seed)}
	if !c.ObservabilityEnabled() {
		opts = append(opts, WithObservability(false))
	}
	if !c.HashCacheEnabled() {
		opts = append(opts, WithHashCache(false))
	}
	if c.ProfilingEnabled() {
		opts = append(opts, WithProfiling(true))
	}
	if c.Routing == spec.RoutingPreemptive {
		opts = append(opts, WithRouting(Preemptive))
	}
	switch c.Guard {
	case spec.GuardOn:
		opts = append(opts, WithSyncGuard(false))
	case spec.GuardBypassed:
		opts = append(opts, WithSyncGuard(true))
	}
	if c.Workload != nil && c.Workload.FloodRate > 0 {
		opts = append(opts, WithFlood(c.Workload.FloodRate))
	}
	if c.Faults != "" {
		plan, err := ParseFaultPlan(c.Faults)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithFaultPlan(plan))
	}
	switch c.Evader.Kind {
	case spec.EvaderFast:
		opts = append(opts, WithFastEvader(time.Duration(c.Evader.Sleep), time.Duration(c.Evader.Threshold)))
	case spec.EvaderThread:
		opts = append(opts,
			WithThreadEvader(time.Duration(c.Evader.Threshold)),
			WithProberSleep(time.Duration(c.Evader.Sleep)))
	}
	if c.Evader.RootkitAddr != nil {
		opts = append(opts, WithRootkitAt(*c.Evader.RootkitAddr))
	}
	switch c.Defense.Kind {
	case spec.DefenseSATIN:
		sat := c.Defense.SATIN
		cfg := Config{
			Tgoal:            time.Duration(sat.Tgoal),
			Technique:        techniqueFromSpec(sat.Technique),
			RandomDeviation:  *sat.RandomDeviation,
			FixedCore:        *sat.FixedCore,
			MaxRounds:        sat.MaxRounds,
			AreaBound:        sat.AreaBound,
			AllowUnsafeAreas: sat.AllowUnsafeAreas,
			Seed:             sat.Seed,
		}
		if cfg.Seed == 0 {
			// Zero means "derive from the root seed": root+2, the same
			// convention satin-sim's flag path has always used, so sweep
			// templates follow InstantiateSpec's per-trial seed.
			cfg.Seed = c.Seed + 2
		}
		opts = append(opts, WithSATIN(cfg))
	case spec.DefenseBaseline:
		b := c.Defense.Baseline
		sel := RandomCore
		if b.Selection == spec.SelectFixed {
			sel = FixedCore
		}
		opts = append(opts, WithBaseline(BaselineConfig{
			Period:          time.Duration(b.Period),
			RandomizePeriod: b.RandomizePeriod,
			Selection:       sel,
			Core:            b.Core,
			Technique:       techniqueFromSpec(b.Technique),
			MaxRounds:       b.MaxRounds,
		}))
	}
	return NewScenario(opts...)
}

func techniqueFromSpec(v string) Technique {
	if v == spec.TechniqueSnapshot {
		return SnapshotHash
	}
	return DirectHash
}

// DriveSpec runs the scenario as the spec's run section instructs: drain to
// completion or advance a fixed virtual horizon.
func DriveSpec(sc *Scenario, s ScenarioSpec) {
	if s.Run.ToCompletion {
		sc.RunToCompletion()
		return
	}
	if d := time.Duration(s.Run.For); d > 0 {
		sc.Run(d)
	}
}

// RunSpecTrial builds the spec's scenario, drives it, and reduces the run to
// sweep metrics — the canonical trial function for spec-template sweeps
// (experiment.RunSpecSweep and `benchtables -spec`). The metric set depends
// only on the spec's shape (defense and evader kinds), never on outcomes, so
// every seed of a sweep reports the same columns.
func RunSpecTrial(s ScenarioSpec) (SweepMetrics, error) {
	c, err := spec.Canonicalize(s)
	if err != nil {
		return nil, err
	}
	sc, err := FromSpec(c)
	if err != nil {
		return nil, err
	}
	DriveSpec(sc, c)
	return specTrialMetrics(c, sc.Report()), nil
}

// specTrialMetrics reduces a finished run to the trial metric set. Shared by
// RunSpecTrial and the checkpoint-forked group trial, which must produce the
// identical rows for the identical spec.
func specTrialMetrics(c ScenarioSpec, rep Report) SweepMetrics {
	var m SweepMetrics
	switch c.Defense.Kind {
	case spec.DefenseSATIN:
		m = m.Add("rounds", float64(rep.SATINRounds)).
			Add("full scans", float64(rep.FullScans)).
			Add("alarms", float64(rep.Alarms))
	case spec.DefenseBaseline:
		m = m.Add("rounds", float64(rep.BaselineRounds)).
			Add("clean rounds", float64(rep.BaselineClean))
	}
	m = m.Add("detected", boolMetric(rep.Detected))
	switch c.Evader.Kind {
	case spec.EvaderFast, spec.EvaderThread:
		m = m.Add("suspects", float64(rep.Suspects)).
			Add("hides", float64(rep.Hides)).
			Add("reinstalls", float64(rep.Reinstalls))
	}
	return m
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
