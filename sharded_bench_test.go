package satin

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	"satin/internal/campaign"
	"satin/internal/serve"
)

// shardWorkerURLEnv carries the coordinator URL into re-exec'd worker
// processes; TestShardWorkerProcess is inert without it.
const shardWorkerURLEnv = "SATIN_SHARD_WORKER_URL"

// TestShardWorkerProcess is not a test of its own: it is the worker-process
// body BenchmarkShardedCampaign re-execs (the standard helper-process
// pattern — `os.Args[0] -test.run=^TestShardWorkerProcess$` with the URL
// in the environment gives each worker a real OS process without needing
// built binaries in the test environment).
func TestShardWorkerProcess(t *testing.T) {
	url := os.Getenv(shardWorkerURLEnv)
	if url == "" {
		t.Skipf("helper process body; spawned by BenchmarkShardedCampaign with %s set", shardWorkerURLEnv)
	}
	err := serve.RunWorker(context.Background(), &serve.Client{BaseURL: url}, serve.WorkerOptions{
		Name:       fmt.Sprintf("bench-%d", os.Getpid()),
		Dir:        t.TempDir(),
		Trial:      RunSpecTrial,
		GroupKey:   CheckpointGroupKey,
		GroupTrial: RunCheckpointGroup,
		Workers:    1,
		Poll:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// benchShardedCampaign measures one full campaign drained by `procs` real
// worker OS processes through the satin-serve lease protocol: submit,
// spawn, wait, verify finalized. The campaign is 4 checkpoint groups of 2
// cells (4 seeds × 2 forkable fault plans over a 45s horizon), so a
// 4-shard plan gives each process one group and the speedup ceiling is
// core-bound: ~procs× on a machine with that many free cores, ~1× on one
// core (the protocol adds only lease/upload overhead either way).
func benchShardedCampaign(b *testing.B, procs int) {
	tmpl := ckptSpec(45*time.Second, "")
	c := campaign.Spec{
		Version:  campaign.CurrentVersion,
		Name:     "sharded-bench",
		Scenario: &tmpl,
		Faults:   []string{"", "dvfs:at=35s,factor=0.8"},
		Seeds:    campaign.SeedRange{Base: 1, Count: 4},
	}
	data, err := campaign.Marshal(c)
	if err != nil {
		b.Fatal(err)
	}
	cells, err := campaign.Cells(c)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := serve.New(serve.Options{DataDir: b.TempDir(), GroupKey: CheckpointGroupKey})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		st, err := (&serve.Client{BaseURL: ts.URL}).Submit(context.Background(), data, procs)
		if err != nil {
			b.Fatal(err)
		}

		cmds := make([]*exec.Cmd, procs)
		for w := range cmds {
			cmd := exec.Command(os.Args[0], "-test.run=^TestShardWorkerProcess$", "-test.v")
			cmd.Env = append(os.Environ(), shardWorkerURLEnv+"="+ts.URL)
			if err := cmd.Start(); err != nil {
				b.Fatal(err)
			}
			cmds[w] = cmd
		}
		for _, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				b.Fatalf("worker process: %v", err)
			}
		}

		final, err := s.Status(st.ID)
		if err != nil {
			b.Fatal(err)
		}
		if !final.Finalized {
			b.Fatalf("job not finalized: %+v", final)
		}
		ts.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(cells))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkShardedCampaignWorkers1 drains the campaign with one worker
// process — the cross-process baseline.
func BenchmarkShardedCampaignWorkers1(b *testing.B) { benchShardedCampaign(b, 1) }

// BenchmarkShardedCampaignWorkers4 drains it with four worker processes.
// `make bench-json` pairs the two under one name in BENCH_PR9.json; the
// ratio is the machine's core headroom (≈4× with 4 free cores, ≈1× on 1).
func BenchmarkShardedCampaignWorkers4(b *testing.B) { benchShardedCampaign(b, 4) }
