package satin

// Tests for the fault-injection layer as seen through the facade: an empty
// plan must leave the golden scenario byte-identical (zero overhead when
// disabled), a fixed non-empty plan must reproduce its own checked-in
// golden trace, and faulted runs must stay worker-count invariant.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// faultedGoldenPlan is the fixed plan behind testdata/
// trace_faulted_seed1.jsonl.golden: every fault kind fires, including a
// hotplug window that forces SATIN to re-route core 1's introspection slot.
func faultedGoldenPlan(t *testing.T) FaultPlan {
	t.Helper()
	plan, err := ParseFaultPlan(
		"jitter:0.05;dvfs:at=5s,factor=0.8;hotplug:core=1,off=2s,on=12s;" +
			"irq:p=0.05,delay=100us;switch:p=0.1,spike=1ms")
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	return plan
}

// TestFaultPlanEmptyGoldenIdentity is the zero-overhead acceptance check: a
// scenario built with an explicitly empty FaultPlan must reproduce the PR 2
// goldens byte for byte — the injector installs nothing, draws nothing, and
// schedules nothing.
func TestFaultPlanEmptyGoldenIdentity(t *testing.T) {
	sc := goldenScenario(t, WithFaultPlan(FaultPlan{}))
	if sc.Faults() != nil {
		t.Fatal("empty FaultPlan installed an injector")
	}
	var trace bytes.Buffer
	sink, err := NewStreamSink(&trace, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	sc.RunToCompletion()
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var timeline bytes.Buffer
	if err := sc.Timeline().WriteText(&timeline); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, tc := range []struct {
		got  []byte
		file string
	}{
		{timeline.Bytes(), "timeline_seed1.golden"},
		{trace.Bytes(), "trace_seed1.jsonl.golden"},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("reading golden: %v", err)
		}
		if !bytes.Equal(tc.got, want) {
			t.Errorf("empty FaultPlan drifted from %s", tc.file)
		}
	}
}

// TestFaultedTraceGolden locks the faulted scenario's streamed JSONL against
// its checked-in golden, mirroring testdata/trace_seed1.* for the unfaulted
// run. Any drift in fault scheduling, RNG stream layout, or re-route
// ordering shows up here.
func TestFaultedTraceGolden(t *testing.T) {
	sc := goldenScenario(t, WithFaultPlan(faultedGoldenPlan(t)))
	var out bytes.Buffer
	sink, err := NewStreamSink(&out, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	sc.RunToCompletion()
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	inj := sc.Faults()
	if inj == nil {
		t.Fatal("non-empty FaultPlan installed no injector")
	}
	if inj.Injected() == 0 {
		t.Error("faulted golden run injected no faults")
	}
	if sc.SATIN().ReroutedRounds() == 0 {
		t.Error("hotplug window produced no re-routed rounds")
	}
	if got, want := len(sc.SATIN().Rounds()), 19; got != want {
		t.Errorf("faulted run completed %d rounds, want the full budget %d", got, want)
	}
	if !strings.Contains(out.String(), `"fault"`) {
		t.Error("faulted trace contains no fault events")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "trace_faulted_seed1.jsonl.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("faulted export drifted from golden\n--- got ---\n%s", out.String())
	}
}

// TestDeterminismFaultedAcrossWorkers extends the worker-count invariance
// check to faulted runs: with a fixed seed and plan, the streamed JSONL and
// metrics snapshot must be byte-identical on one worker and on eight.
func TestDeterminismFaultedAcrossWorkers(t *testing.T) {
	run := func(workers int) (traces, metrics []string) {
		t.Helper()
		const seeds = 4
		traces = make([]string, seeds)
		metrics = make([]string, seeds)
		_, err := RunSeedsObserved(context.Background(), "fault-determinism", 1, seeds, workers, nil,
			func(seed uint64) (SweepMetrics, error) {
				cfg := DefaultConfig()
				cfg.Tgoal = 19 * time.Second
				cfg.MaxRounds = 19
				cfg.Seed = 3
				sc, err := NewScenario(WithSeed(seed), WithSATIN(cfg), WithFastEvader(0, 0),
					WithFaultPlan(faultedGoldenPlan(t)))
				if err != nil {
					return nil, err
				}
				var out bytes.Buffer
				sink, err := NewStreamSink(&out, ExportJSONL)
				if err != nil {
					return nil, err
				}
				sc.Bus().Subscribe(sink.OnEvent)
				sc.RunToCompletion()
				if err := sink.Flush(); err != nil {
					return nil, err
				}
				traces[seed-1] = out.String()
				metrics[seed-1] = sc.Metrics().String()
				return SweepMetrics{}.Add("injected", float64(sc.Faults().Injected())), nil
			})
		if err != nil {
			t.Fatalf("RunSeedsObserved(workers=%d): %v", workers, err)
		}
		return traces, metrics
	}
	traces1, metrics1 := run(1)
	traces8, metrics8 := run(8)
	for i := range traces1 {
		if traces1[i] == "" {
			t.Fatalf("seed %d produced an empty trace", i+1)
		}
		if traces1[i] != traces8[i] {
			t.Errorf("seed %d: faulted JSONL differs between workers=1 and workers=8", i+1)
		}
		if metrics1[i] != metrics8[i] {
			t.Errorf("seed %d: faulted metrics differ between workers=1 and workers=8", i+1)
		}
	}
}

// TestFaultMetricsRegistered checks the faulted run surfaces its injection
// counters through the metrics registry.
func TestFaultMetricsRegistered(t *testing.T) {
	sc := goldenScenario(t, WithFaultPlan(faultedGoldenPlan(t)))
	sc.RunToCompletion()
	snap := sc.Metrics()
	total, ok := snap.Get("fault.injected")
	if !ok || total.Value != int64(sc.Faults().Injected()) {
		t.Errorf("fault.injected = %d (present=%v), want %d", total.Value, ok, sc.Faults().Injected())
	}
	reroutes, ok := snap.Get("satin.rerouted_rounds")
	if !ok || reroutes.Value != int64(sc.SATIN().ReroutedRounds()) {
		t.Errorf("satin.rerouted_rounds = %d (present=%v), want %d", reroutes.Value, ok, sc.SATIN().ReroutedRounds())
	}
	if hp, ok := snap.Get("fault.hotplug_transitions"); !ok || hp.Value != 2 {
		t.Errorf("fault.hotplug_transitions = %d (present=%v), want 2", hp.Value, ok)
	}
}

// TestFaultPlanRejected checks facade-level validation: a malformed plan
// fails scenario construction instead of corrupting the run.
func TestFaultPlanRejected(t *testing.T) {
	bad := FaultPlan{DVFS: []FaultDVFSStep{{At: 0, Core: 99, Factor: 0.5}}}
	if _, err := NewScenario(WithSeed(1), WithFaultPlan(bad)); err == nil {
		t.Error("out-of-range DVFS core accepted")
	}
	if _, err := ParseFaultPlan("scale:nope"); err == nil {
		t.Error("malformed scale magnitude accepted")
	}
}
