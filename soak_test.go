package satin

import (
	"testing"
	"time"
)

// TestSoakHourLongRun drives a full attack-vs-defense scenario for one
// simulated hour and checks the long-horizon invariants: the round rate
// stays on schedule (no drift in the wake-up queue), every pass keeps
// catching the rootkit, the prober never desynchronizes, and the engine
// drains cleanly. Skipped under -short.
func TestSoakHourLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := DefaultConfig() // tp = 8 s, the paper's schedule
	const hour = time.Hour
	// One simulated hour at one round per 8 s ≈ 450 rounds ≈ 23 passes.
	cfg.MaxRounds = int(hour / (8 * time.Second))
	sc, err := NewScenario(WithSeed(99), WithSATIN(cfg), WithFastEvader(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sc.RunToCompletion()

	s := sc.SATIN()
	rounds := s.Rounds()
	if len(rounds) != cfg.MaxRounds {
		t.Fatalf("rounds = %d, want %d", len(rounds), cfg.MaxRounds)
	}
	// Rate stability: total span ≈ rounds × tp, within 5%.
	span := rounds[len(rounds)-1].Started.Sub(rounds[0].Started)
	want := time.Duration(len(rounds)-1) * 8 * time.Second
	if span < want*95/100 || span > want*105/100 {
		t.Errorf("span = %v over %d rounds, want ≈%v (schedule drift?)", span, len(rounds), want)
	}
	// Detection stays perfect: every check of the attacked area alarms
	// (the final partial pass may or may not have reached area 14).
	area14 := len(s.AreaRounds(14))
	alarms := s.Alarms()
	if len(alarms) != area14 || area14 < s.FullScans() {
		t.Errorf("alarms = %d, area-14 checks = %d, passes = %d", len(alarms), area14, s.FullScans())
	}
	for _, a := range alarms {
		if a.Area != 14 {
			t.Errorf("alarm in area %d", a.Area)
		}
	}
	// The evader flagged every round and ended the run re-armed.
	if got := len(sc.FastEvader().SuspectEvents()); got != len(rounds) {
		t.Errorf("evader flagged %d of %d rounds", got, len(rounds))
	}
	// Core usage stays balanced: no core does more than twice its share.
	perCore := map[int]int{}
	for _, r := range rounds {
		perCore[r.CoreID]++
	}
	share := len(rounds) / 6
	for c, n := range perCore {
		if n > 2*share || n < share/2 {
			t.Errorf("core %d served %d rounds, share is %d", c, n, share)
		}
	}
}
