package satin

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"satin/internal/attack"
	"satin/internal/campaign"
	"satin/internal/checkpoint"
	"satin/internal/core"
	"satin/internal/faultinject"
	"satin/internal/hw"
	"satin/internal/simclock"
	"satin/internal/spec"
)

// Checkpoint/fork facade — the orchestration half of the protocol whose
// format lives in internal/checkpoint and whose contract is documented in
// docs/CHECKPOINT.md.
//
// A checkpoint captures a running scenario at a *claimable instant*: a
// virtual time at which every live pending event in the engine is claimed by
// exactly one component (no secure-world payload in flight, every core online
// in the normal world). From one checkpoint, any number of divergent
// continuations fork: each is a fresh scenario built from its own member
// spec, overwritten with the captured state, and byte-identical from there on
// to a from-scratch run of that member — trace stream, timeline, metrics,
// and report all included. Memory is captured copy-on-write: only pages
// whose write generation moved since construction are stored.

// Snapshot is a captured scenario at a claimable instant; see
// Scenario.Checkpoint. Write and read them with WriteCheckpoint /
// ReadCheckpoint.
type Snapshot = checkpoint.Snapshot

// WriteCheckpoint writes a snapshot to path in the versioned SATINCKP format.
func WriteCheckpoint(path string, snap *Snapshot) error {
	return checkpoint.WriteFile(path, snap)
}

// ReadCheckpoint reads a snapshot written by WriteCheckpoint, verifying
// magic, version, and checksum.
func ReadCheckpoint(path string) (*Snapshot, error) {
	return checkpoint.ReadFile(path)
}

// CheckpointSupported reports whether the spec'd scenario can be checkpointed
// at instant `at` (and, symmetrically, whether it can resume from a snapshot
// taken there). The v1 protocol covers the fast evader or no evader, requires
// observability (the timeline is part of the capture), a fixed run horizon
// beyond the checkpoint, no profiler, and a fault plan — if any — whose
// observable effects all land strictly after the instant.
func CheckpointSupported(s ScenarioSpec, at time.Duration) error {
	c, err := spec.Canonicalize(s)
	if err != nil {
		return err
	}
	if at <= 0 {
		return fmt.Errorf("satin: checkpoint instant %v is not after boot", at)
	}
	if c.Evader.Kind == spec.EvaderThread {
		return fmt.Errorf("satin: the thread-level evader is not checkpointable (perpetual unclaimed thread events)")
	}
	if !c.ObservabilityEnabled() {
		return fmt.Errorf("satin: checkpointing requires observability (the timeline is part of the capture)")
	}
	if c.ProfilingEnabled() {
		return fmt.Errorf("satin: profiled runs are not checkpointable (span stacks are not captured)")
	}
	if c.Run.ToCompletion || time.Duration(c.Run.For) <= at {
		return fmt.Errorf("satin: run horizon %v does not extend past the checkpoint instant %v", time.Duration(c.Run.For), at)
	}
	if c.Faults != "" {
		plan, err := faultinject.ParsePlan(c.Faults)
		if err != nil {
			return err
		}
		if !plan.ForkableAfter(simclock.Time(at)) {
			return fmt.Errorf("satin: fault plan %q perturbs the run at or before the checkpoint instant %v", c.Faults, at)
		}
	}
	return nil
}

// CheckpointKey canonicalizes the spec and strips the sections a fork may
// diverge in — the fault plan, the run horizon, and the export list — and
// returns the marshaled remainder. Two specs share a checkpointable prefix
// exactly when their keys are byte-equal; the key is also the PrefixSpec
// embedded in a snapshot, which ResumeScenario matches resuming specs
// against.
func CheckpointKey(s ScenarioSpec) ([]byte, error) {
	c, err := spec.Canonicalize(s)
	if err != nil {
		return nil, err
	}
	k := c.Clone()
	k.Faults = ""
	k.Run = spec.Run{}
	k.Export = nil
	return spec.Marshal(k)
}

// claimableStepBound caps the step-past-the-barrier search. Secure-world
// residencies span a handful of transient events each, so a claimable instant
// is always a few steps away; hitting the bound means a component is
// scheduling events the protocol does not know about.
const claimableStepBound = 10000

// Checkpoint advances the scenario to virtual instant `at`, steps to the
// first claimable instant at or after it, and captures a snapshot carrying
// prefixKey as its resume-compatibility key (produce it with CheckpointKey).
//
// The scenario must be fault-free (checkpoints are taken on shared prefixes;
// members add their fault plans on resume), observable, profiler-free, and
// driven by the fast evader or none. The scenario remains live and runnable
// afterwards — capturing reads, never mutates.
func (s *Scenario) Checkpoint(at time.Duration, prefixKey []byte) (*Snapshot, error) {
	if s.evader != nil {
		return nil, fmt.Errorf("satin: the thread-level evader is not checkpointable")
	}
	if s.prof != nil {
		return nil, fmt.Errorf("satin: profiled runs are not checkpointable")
	}
	if s.bus == nil || s.reg == nil {
		return nil, fmt.Errorf("satin: checkpointing requires observability")
	}
	if s.injector != nil {
		return nil, fmt.Errorf("satin: checkpoints are taken on fault-free prefixes (the member's plan installs on resume)")
	}
	if s.guard != nil && (s.guard.Trapped() != 0 || len(s.guard.Denied()) != 0) {
		return nil, fmt.Errorf("satin: the sync guard trapped writes before the checkpoint instant")
	}
	if tc := simclock.Time(at); tc < s.engine.Now() {
		return nil, fmt.Errorf("satin: checkpoint instant %v is in the scenario's past (now %v)", at, s.Now())
	}
	s.engine.RunUntil(simclock.Time(at))
	claims, err := s.stepToClaimable()
	if err != nil {
		return nil, err
	}

	st := checkpoint.State{
		Now:        s.engine.Now(),
		Dispatched: s.engine.Dispatched(),
		Claims:     claims,
		// The raw registry snapshot, NOT Scenario.Metrics(): the end-of-run
		// refresh would mint engine.* gauges that a freshly built fork's
		// registry does not hold yet, and Restore rejects unknown rows.
		Metrics:  s.reg.Snapshot(),
		Timeline: s.timeline.CheckpointEvents(),
	}
	for _, c := range s.plat.Cores() {
		cs, err := c.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.Cores = append(st.Cores, cs)
	}
	if err := s.plat.GIC().CheckpointIdle(); err != nil {
		return nil, err
	}
	if st.Monitor, err = s.monitor.CheckpointState(); err != nil {
		return nil, err
	}
	if st.Checker, err = s.checker.CheckpointState(); err != nil {
		return nil, err
	}
	if s.satin != nil {
		ss, err := s.satin.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.SATIN = &ss
	}
	if s.baseline != nil {
		bs, err := s.baseline.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.Baseline = &bs
	}
	if s.fastEvader != nil {
		fs, err := s.fastEvader.CheckpointState()
		if err != nil {
			return nil, err
		}
		st.FastEvader = &fs
		rs := s.rootkit.CheckpointState()
		st.Rootkit = &rs
	}
	if s.flood != nil {
		fs := s.flood.CheckpointState()
		st.Flood = &fs
	}

	m := s.image.Mem()
	gens := m.PageGens()
	var pages []checkpoint.Page
	for p, g := range gens {
		if g == s.bootGens[p] {
			continue
		}
		view, err := m.PageView(p)
		if err != nil {
			return nil, err
		}
		pages = append(pages, checkpoint.Page{Index: p, Data: append([]byte(nil), view...)})
	}
	return &Snapshot{
		PrefixSpec: append([]byte(nil), prefixKey...),
		State:      st,
		Pages:      pages,
		Gens:       gens,
	}, nil
}

// collectClaims gathers every component's claims over its live pending
// events, sorted in firing order. The engine's pending set is claimable when
// VerifyClaims accepts this exact set.
func (s *Scenario) collectClaims() ([]simclock.Claim, error) {
	var claims []simclock.Claim
	for _, c := range s.plat.Cores() {
		claims = append(claims, c.Claims()...)
	}
	if s.satin != nil {
		cs, err := s.satin.Claims()
		if err != nil {
			return nil, err
		}
		claims = append(claims, cs...)
	}
	if s.fastEvader != nil {
		claims = append(claims, s.fastEvader.Claims()...)
	}
	if s.flood != nil {
		claims = append(claims, s.flood.Claims()...)
	}
	if s.injector != nil {
		claims = append(claims, s.injector.Claims()...)
	}
	simclock.SortClaims(claims)
	return claims, nil
}

// stepToClaimable fires events one at a time until the live pending set is
// fully claimed — which it is whenever no secure-world payload is in flight,
// typically zero to a few steps from any instant.
func (s *Scenario) stepToClaimable() ([]simclock.Claim, error) {
	for i := 0; i < claimableStepBound; i++ {
		claims, err := s.collectClaims()
		if err != nil {
			return nil, err
		}
		if s.engine.VerifyClaims(claims) == nil {
			return claims, nil
		}
		if !s.engine.Step() {
			// Queue drained without reaching a claimable instant: whatever
			// was unclaimed has now fired, so re-verify the (empty-ish) set.
			claims, err := s.collectClaims()
			if err != nil {
				return nil, err
			}
			if verr := s.engine.VerifyClaims(claims); verr != nil {
				return nil, verr
			}
			return claims, nil
		}
	}
	return nil, fmt.Errorf("satin: no claimable instant within %d events of the barrier", claimableStepBound)
}

// RestoreSnapshot overwrites a freshly constructed, never-driven scenario
// with a snapshot's state: component state and memory pages land first, the
// captured timeline is replayed through the bus (so sinks subscribed since
// construction see the prefix), the clock jumps to the checkpoint instant,
// and finally each claimed event is re-armed through its owning component in
// capture order. The scenario's own construction — including any fault plan
// the snapshot's prefix did not carry — is preserved; only the captured
// prefix's effects are imposed.
//
// Use ResumeScenario unless sinks must be subscribed between construction
// and restore.
func (s *Scenario) RestoreSnapshot(snap *Snapshot) error {
	if s.engine.Now() != 0 || s.engine.Dispatched() != 0 {
		return fmt.Errorf("satin: restoring into a scenario that has already been driven")
	}
	if s.evader != nil || s.prof != nil {
		return fmt.Errorf("satin: scenario is not checkpoint-compatible (thread evader or profiler installed)")
	}
	if s.bus == nil || s.reg == nil {
		return fmt.Errorf("satin: restoring requires observability")
	}
	if s.timeline.Len() != 0 {
		return fmt.Errorf("satin: restoring into a scenario with a non-empty timeline")
	}
	st := &snap.State
	if len(st.Cores) != s.plat.NumCores() {
		return fmt.Errorf("satin: snapshot has %d cores, scenario has %d", len(st.Cores), s.plat.NumCores())
	}
	if (st.SATIN != nil) != (s.satin != nil) {
		return fmt.Errorf("satin: snapshot and scenario disagree on SATIN presence")
	}
	if (st.Baseline != nil) != (s.baseline != nil) {
		return fmt.Errorf("satin: snapshot and scenario disagree on baseline presence")
	}
	if (st.FastEvader != nil) != (s.fastEvader != nil) {
		return fmt.Errorf("satin: snapshot and scenario disagree on fast evader presence")
	}
	if st.FastEvader != nil && st.Rootkit == nil {
		return fmt.Errorf("satin: snapshot has a fast evader but no rootkit state")
	}
	if (st.Flood != nil) != (s.flood != nil) {
		return fmt.Errorf("satin: snapshot and scenario disagree on flood presence")
	}

	// Phase 1: pure state. Components cancel their own construction-era
	// events (core timers, the flood's first tick) as they restore.
	for i, cs := range st.Cores {
		if err := s.plat.Core(i).RestoreState(cs); err != nil {
			return err
		}
	}
	if err := s.monitor.RestoreState(st.Monitor); err != nil {
		return err
	}
	if err := s.checker.RestoreState(st.Checker); err != nil {
		return err
	}
	if st.SATIN != nil {
		if err := s.satin.RestoreState(*st.SATIN); err != nil {
			return err
		}
	}
	if st.Baseline != nil {
		if err := s.baseline.RestoreState(*st.Baseline); err != nil {
			return err
		}
	}
	if st.FastEvader != nil {
		if err := s.fastEvader.RestoreState(*st.FastEvader); err != nil {
			return err
		}
		s.rootkit.RestoreState(*st.Rootkit)
	}
	if st.Flood != nil {
		s.flood.RestoreState(*st.Flood)
	}
	m := s.image.Mem()
	for _, p := range snap.Pages {
		if err := m.RestorePage(p.Index, p.Data); err != nil {
			return err
		}
	}
	if err := m.SetPageGens(snap.Gens); err != nil {
		return err
	}
	if err := s.reg.Restore(st.Metrics); err != nil {
		return err
	}
	// Replay the prefix through the bus: the timeline (subscribed at
	// construction) refills, and any sink the caller subscribed before this
	// call sees the prefix events exactly as a from-scratch run would emit
	// them.
	for _, e := range st.Timeline {
		s.bus.Publish(e)
	}
	if err := s.engine.RestoreClock(st.Now, st.Dispatched); err != nil {
		return err
	}

	// Phase 2: re-arm the claims in capture order, so same-instant events
	// fire in the order the original run would have. Kept claims never
	// appear in a snapshot — the prefix is fault-free by construction.
	for _, c := range st.Claims {
		if c.Kept {
			return fmt.Errorf("satin: snapshot contains a kept claim %q/%q — prefixes are fault-free", c.Owner, c.Name)
		}
		var err error
		switch c.Owner {
		case hw.ClaimOwnerTimer:
			id := int(c.Key)
			if id < 0 || id >= s.plat.NumCores() {
				return fmt.Errorf("satin: timer claim for unknown core %d", id)
			}
			err = s.plat.Core(id).RearmTimer(c)
		case core.ClaimOwnerSATIN:
			if s.satin == nil {
				return fmt.Errorf("satin: SATIN claim in a snapshot without SATIN state")
			}
			err = s.satin.RearmOrphan(c)
		case attack.ClaimOwnerFastEvader:
			if s.fastEvader == nil {
				return fmt.Errorf("satin: fast evader claim in a snapshot without evader state")
			}
			err = s.fastEvader.Rearm(c)
		case attack.ClaimOwnerFlood:
			if s.flood == nil {
				return fmt.Errorf("satin: flood claim in a snapshot without flood state")
			}
			err = s.flood.RearmTick(c)
		default:
			err = fmt.Errorf("satin: claim names unknown owner %q", c.Owner)
		}
		if err != nil {
			return err
		}
	}

	// The restored pending set must verify exactly — including this
	// scenario's own construction-scheduled fault events, which its injector
	// claims as kept.
	claims, err := s.collectClaims()
	if err != nil {
		return err
	}
	if err := s.engine.VerifyClaims(claims); err != nil {
		return fmt.Errorf("satin: restored scenario failed claim verification: %w", err)
	}
	return nil
}

// ResumeScenario validates that member (a full spec, fault plan and run
// horizon included) resumes from snap — its CheckpointKey must match the
// snapshot's PrefixSpec byte for byte — then builds the member's scenario
// and restores the snapshot into it. The returned scenario sits at the
// checkpoint instant; drive the remaining horizon with RunRemaining (or
// Run directly). The canonical member spec is returned alongside.
func ResumeScenario(snap *Snapshot, member ScenarioSpec) (*Scenario, ScenarioSpec, error) {
	c, err := ValidateResume(snap, member)
	if err != nil {
		return nil, c, err
	}
	sc, err := FromSpec(c)
	if err != nil {
		return nil, c, err
	}
	if err := sc.RestoreSnapshot(snap); err != nil {
		return nil, c, err
	}
	return sc, c, nil
}

// ValidateResume is ResumeScenario's admission check alone: it canonicalizes
// member and verifies it can resume from snap, without building anything.
// Callers that need to attach observers before the timeline replay (a trace
// sink must see the replayed prefix) build the scenario themselves, subscribe,
// and then call RestoreSnapshot — satin-sim's -resume-from does exactly this.
func ValidateResume(snap *Snapshot, member ScenarioSpec) (ScenarioSpec, error) {
	c, err := spec.Canonicalize(member)
	if err != nil {
		return c, err
	}
	if err := CheckpointSupported(c, snap.State.Now.Duration()); err != nil {
		return c, err
	}
	key, err := CheckpointKey(c)
	if err != nil {
		return c, err
	}
	if !bytes.Equal(key, snap.PrefixSpec) {
		return c, fmt.Errorf("satin: spec does not share the snapshot's prefix (checkpoint keys differ)")
	}
	return c, nil
}

// RunRemaining drives a resumed scenario from its current instant to the
// spec's run horizon — the fork-side counterpart of DriveSpec.
func RunRemaining(sc *Scenario, s ScenarioSpec) {
	if d := time.Duration(s.Run.For) - sc.Now(); d > 0 {
		sc.Run(d)
	}
}

// Campaign integration: shared-prefix sweeps. A campaign crossing one
// scenario with a fault axis produces cells that differ only in their fault
// plans — and a forkable plan's effects all land late in the run, so the
// cells share a long fault-free prefix. CheckpointGroupKey identifies such
// groups and RunCheckpointGroup executes one: prefix once, one fork per
// member, O(prefix + K×suffix) instead of O(K×(prefix+suffix)). Wire both
// into campaign.RunOptions (benchtables does, behind -campaign-fork).

// CheckpointGroupKey is the campaign.GroupKeyFunc for shared-prefix forking:
// it reports the spec's checkpoint key when the checkpoint protocol covers
// the spec's shape, and ok=false for shapes that must run cell-by-cell.
func CheckpointGroupKey(s ScenarioSpec) (string, bool) {
	if err := CheckpointSupported(s, time.Nanosecond); err != nil {
		return "", false
	}
	key, err := CheckpointKey(s)
	if err != nil {
		return "", false
	}
	return string(key), true
}

const (
	// forkBarrierMargin keeps the shared barrier strictly clear of every
	// member's first divergence (fault instants are exclusive bounds, but a
	// margin keeps the barrier from landing inside the claim-stepping window
	// right at one).
	forkBarrierMargin = 100 * time.Millisecond
	// forkMinBarrier is the smallest prefix worth forking: below it the
	// snapshot overhead outweighs the shared work.
	forkMinBarrier = time.Second
)

// forkBarrier places the checkpoint for a group of canonical members: the
// minimum over members of their run horizon and first fault instant, minus
// the margin. ok=false means the shared prefix is too short to pay for
// forking and the group should run from scratch.
func forkBarrier(members []ScenarioSpec) (time.Duration, bool) {
	var limit time.Duration
	for i, c := range members {
		h := time.Duration(c.Run.For)
		if i == 0 || h < limit {
			limit = h
		}
		if c.Faults == "" {
			continue
		}
		plan, err := faultinject.ParsePlan(c.Faults)
		if err != nil {
			return 0, false
		}
		if at, ok := plan.FirstFaultAt(); ok && at < limit {
			limit = at
		}
	}
	b := limit - forkBarrierMargin
	if b < forkMinBarrier {
		return 0, false
	}
	return b, true
}

// RunCheckpointGroup is the campaign.GroupTrialFunc for shared-prefix
// forking: run the members' common fault-free prefix once, checkpoint it at
// the latest shared barrier, and fork one continuation per member. Every
// result is byte-equivalent to RunSpecTrial on the same member — guaranteed
// by the fork-identity property and enforced by falling back to from-scratch
// runs whenever the prefix cannot be checkpointed.
func RunCheckpointGroup(ctx context.Context, members []ScenarioSpec) []campaign.GroupResult {
	out := make([]campaign.GroupResult, len(members))
	fallback := func() []campaign.GroupResult {
		for i := range members {
			if err := ctx.Err(); err != nil {
				out[i] = campaign.GroupResult{Err: err}
				continue
			}
			m, err := RunSpecTrial(members[i])
			out[i] = campaign.GroupResult{Metrics: m, Err: err}
		}
		return out
	}
	canon := make([]ScenarioSpec, len(members))
	for i := range members {
		c, err := spec.Canonicalize(members[i])
		if err != nil {
			return fallback()
		}
		canon[i] = c
	}
	barrier, ok := forkBarrier(canon)
	if !ok {
		return fallback()
	}
	prefix := canon[0].Clone()
	prefix.Faults = ""
	psc, err := FromSpec(prefix)
	if err != nil {
		return fallback()
	}
	key, err := CheckpointKey(canon[0])
	if err != nil {
		return fallback()
	}
	snap, err := psc.Checkpoint(barrier, key)
	if err != nil {
		return fallback()
	}
	for i := range canon {
		if err := ctx.Err(); err != nil {
			out[i] = campaign.GroupResult{Err: err}
			continue
		}
		sc, c, err := ResumeScenario(snap, canon[i])
		if err != nil {
			// The key matched at grouping time, so this is unexpected — run
			// the member from scratch rather than failing its cell.
			m, terr := RunSpecTrial(canon[i])
			out[i] = campaign.GroupResult{Metrics: m, Err: terr}
			continue
		}
		RunRemaining(sc, c)
		out[i] = campaign.GroupResult{Metrics: specTrialMetrics(c, sc.Report())}
	}
	return out
}
