package main

import (
	"strings"
	"testing"
)

func TestRunCalibrateSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "calibrate", "-observe", "5s"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "suggested Tns_threshold:") {
		t.Errorf("calibrate output missing threshold:\n%s", got)
	}
}

func TestRunDetectReportsDelay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "detect"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "prober flagged core 4") || !strings.Contains(got, "Tns_delay =") {
		t.Errorf("detect output unexpected:\n%s", got)
	}
}

func TestRunKProber1ShowsTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "kprober1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "KProber-I installed") || !strings.Contains(got, "modified bytes in kernel text") {
		t.Errorf("kprober1 output unexpected:\n%s", got)
	}
}

func TestRunUserProberKind(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "calibrate", "-observe", "5s", "-prober", "user"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "suggested Tns_threshold:") {
		t.Errorf("user-prober calibrate output unexpected:\n%s", got)
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-prober", "bogus"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
