// Command tzevader runs the attack-side studies: probing threshold
// calibration (§VII-B), the prober's detection delay against a live secure
// entry, and the KProber-I trace demonstration.
//
// Usage:
//
//	tzevader -mode calibrate -observe 30s     # learn Tns_threshold on a quiet device
//	tzevader -mode detect                     # measure Tns_delay against one secure entry
//	tzevader -mode kprober1                   # show KProber-I's tick reports and its memory trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"satin/internal/attack"
	"satin/internal/hw"
	"satin/internal/mem"
	"satin/internal/richos"
	"satin/internal/simclock"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tzevader: %v\n", err)
		os.Exit(1)
	}
}

type rig struct {
	engine *simclock.Engine
	plat   *hw.Platform
	image  *mem.Image
	os     *richos.OS
	buffer *attack.ReportBuffer
}

func newRig(seed uint64) (*rig, error) {
	e := simclock.NewEngine()
	p, err := hw.NewJunoR1(e)
	if err != nil {
		return nil, err
	}
	im, err := mem.NewJunoImage(seed)
	if err != nil {
		return nil, err
	}
	osim, err := richos.NewOS(p, im, richos.Config{Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	buf, err := attack.NewReportBuffer(p.NumCores(), attack.JunoCrossCoreNoise(), seed+2)
	if err != nil {
		return nil, err
	}
	return &rig{engine: e, plat: p, image: im, os: osim, buffer: buf}, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tzevader", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Uint64("seed", 1, "root seed")
	mode := fs.String("mode", "calibrate", "calibrate | detect | kprober1 | flood")
	observe := fs.Duration("observe", 30*time.Second, "calibration observation window")
	kind := fs.String("prober", "kprober2", "prober kind: user | kprober2")
	if err := fs.Parse(args); err != nil {
		return err
	}

	proberKind := attack.KProberII
	if *kind == "user" {
		proberKind = attack.UserProber
	} else if *kind != "kprober2" {
		return fmt.Errorf("unknown prober %q", *kind)
	}

	r, err := newRig(*seed)
	if err != nil {
		return err
	}
	switch *mode {
	case "calibrate":
		finish, err := attack.CalibrateThreshold(r.os, r.buffer, proberKind, *observe, attack.DefaultThresholdSafety)
		if err != nil {
			return err
		}
		r.engine.RunFor(*observe + time.Second)
		threshold, err := finish()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "observed for %v on a quiet device (%s)\n", observe, proberKind)
		fmt.Fprintf(out, "suggested Tns_threshold: %v (paper operates at 1.8ms)\n", threshold)
		return nil

	case "detect":
		var suspectAt simclock.Time
		prober, err := attack.NewThreadProber(r.os, r.buffer, attack.ProberConfig{
			Kind:      proberKind,
			Threshold: 1800 * time.Microsecond,
			OnSuspect: func(core int, at simclock.Time) {
				if suspectAt == 0 {
					suspectAt = at
					fmt.Fprintf(out, "prober flagged core %d at %v\n", core, at.Duration())
				}
			},
		})
		if err != nil {
			return err
		}
		if err := prober.Start(); err != nil {
			return err
		}
		const entry = 2 * time.Second
		r.engine.After(entry, "steal", func() { r.plat.Core(4).SetWorld(hw.SecureWorld) })
		r.engine.After(entry+80*time.Millisecond, "release", func() { r.plat.Core(4).SetWorld(hw.NormalWorld) })
		r.engine.RunFor(3 * time.Second)
		if suspectAt == 0 {
			return fmt.Errorf("prober missed the secure entry")
		}
		fmt.Fprintf(out, "secure entry at %v; Tns_delay = %v\n", entry, suspectAt.Duration()-entry)
		return nil

	case "kprober1":
		kp1 := attack.NewKProber1(r.os, r.buffer)
		if err := kp1.Install(true); err != nil {
			return err
		}
		r.engine.RunFor(2 * time.Second)
		fmt.Fprintf(out, "KProber-I installed at %#x (IRQ vector hijack)\n", kp1.HijackAddr())
		for c := 0; c < r.plat.NumCores(); c++ {
			fmt.Fprintf(out, "  core %d reported %d times in 2s (HZ=%d)\n", c, kp1.ReportCount(c), r.os.Config().HZ)
		}
		mod := r.image.Modified()
		fmt.Fprintf(out, "memory trace: %d modified bytes in kernel text (introspection of area 0 finds them)\n", len(mod))
		return nil

	case "flood":
		flood, err := attack.NewInterruptFlood(r.plat, 30000, nil)
		if err != nil {
			return err
		}
		if err := flood.Start(); err != nil {
			return err
		}
		r.engine.RunFor(2 * time.Second)
		fmt.Fprintf(out, "SGI flood: %d interrupts raised in 2s across %d cores (30 kHz per core)\n",
			flood.Raised(), r.plat.NumCores())
		fmt.Fprintln(out, "against SATIN's SCR_EL3.IRQ=0 routing this is inert; see `benchtables -only flood`")
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
