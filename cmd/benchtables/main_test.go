package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Table I") {
		t.Errorf("output missing Table I header:\n%s", got)
	}
	if !strings.Contains(got, "A53") {
		t.Errorf("output missing A53 row:\n%s", got)
	}
}

func TestRunShorthandFlagSelectsExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-switch"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Ts_switch") {
		t.Errorf("-switch did not run the switch experiment:\n%s", got)
	}
	if strings.Contains(got, "Table I") {
		t.Errorf("-switch also ran other experiments:\n%s", got)
	}
}

func TestRunOnlyListSelection(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "switch, recover"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Ts_switch", "Tns_recover"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownExperimentErrors(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-only", "switch,bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "bogus"`) {
		t.Errorf("err = %v, want unknown-experiment error naming bogus", err)
	}
}

func TestRunBadFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nonsense-flag"}, &out); err == nil {
		t.Error("undefined flag did not error")
	}
	if err := run([]string{"-seeds", "0"}, &out); err == nil || !strings.Contains(err.Error(), "-seeds") {
		t.Errorf("-seeds 0 error = %v", err)
	}
}

func TestDeterminismSweepCLIWorkerInvariant(t *testing.T) {
	var one, eight strings.Builder
	if err := run([]string{"-evasion", "-seeds", "3", "-workers", "1"}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-evasion", "-seeds", "3", "-workers", "8"}, &eight); err != nil {
		t.Fatal(err)
	}
	if one.String() != eight.String() {
		t.Errorf("-workers 1 and -workers 8 outputs differ:\n%s\nvs\n%s", one.String(), eight.String())
	}
	got := one.String()
	if !strings.Contains(got, "multi-seed") || !strings.Contains(got, "3 seeds (1..3)") {
		t.Errorf("sweep output missing aggregate header:\n%s", got)
	}
	if !strings.Contains(got, "evasion rate") || !strings.Contains(got, "P90") {
		t.Errorf("sweep output missing distribution columns:\n%s", got)
	}
}

func TestRunSweepFlagLeavesSingleSeedExperimentsAlone(t *testing.T) {
	// -seeds only switches the sweep-capable experiments; table1 keeps its
	// single-seed rendering.
	var out strings.Builder
	if err := run([]string{"-table1", "-seeds", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "Table I") || strings.Contains(got, "multi-seed") {
		t.Errorf("-table1 -seeds 4 output unexpected:\n%s", got)
	}
}

func TestRunMetricsOutExportsSweepCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.csv")
	var out strings.Builder
	if err := run([]string{"-evasion", "-seeds", "3", "-metrics-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.HasPrefix(got, "experiment,metric,seed,value\n") {
		t.Errorf("metrics CSV missing header:\n%.120s", got)
	}
	if !strings.Contains(got, "TZ-Evader vs baseline (§IV),evasion rate,1,1\n") {
		t.Errorf("metrics CSV missing evasion-rate sample:\n%s", got)
	}
	if !strings.Contains(out.String(), "1 sweeps exported to") {
		t.Errorf("missing export confirmation:\n%s", out.String())
	}
}

func TestRunMetricsOutDeterministicAcrossWorkers(t *testing.T) {
	export := func(workers string) string {
		path := filepath.Join(t.TempDir(), "m.csv")
		var out strings.Builder
		if err := run([]string{"-evasion", "-seeds", "3", "-workers", workers, "-metrics-out", path}, &out); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if export("1") != export("8") {
		t.Error("-metrics-out CSV differs between -workers 1 and -workers 8")
	}
}

func TestRunMetricsOutNeedsSweeps(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-evasion", "-metrics-out", "x.csv"}, &out); err == nil {
		t.Error("-metrics-out with -seeds 1 did not error")
	}
	if err := run([]string{"-switch", "-seeds", "3", "-metrics-out", "x.csv"}, &out); err == nil {
		t.Error("-metrics-out without a sweep-capable experiment did not error")
	}
}

func TestRunProgressStreamsToErrOut(t *testing.T) {
	var out, errOut strings.Builder
	if err := runWith([]string{"-evasion", "-seeds", "3", "-progress"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	got := errOut.String()
	if !strings.Contains(got, "evasion: 3/3") {
		t.Errorf("progress stream missing final notice:\n%s", got)
	}
	if strings.Contains(out.String(), "evasion: 3/3") {
		t.Error("progress leaked into deterministic stdout")
	}
}
