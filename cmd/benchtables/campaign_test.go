package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"satin"
	"satin/internal/serve"
)

// miniCampaign is a fast real-simulation campaign: 2 evaders × 1 seed, four
// SATIN rounds each.
const miniCampaign = `{
  "version": 1,
  "name": "mini",
  "scenario": {
    "version": 1,
    "seed": 1,
    "defense": {"kind": "satin", "satin": {"tgoal": "4s", "max_rounds": 4}},
    "evader": {"kind": "fast"},
    "run": {"to_completion": true}
  },
  "grid": [{"path": "evader.kind", "values": ["fast", "none"]}],
  "seeds": {"base": 1, "count": 1}
}`

func writeMiniCampaign(t *testing.T) (campaignPath, resultPath string) {
	t.Helper()
	dir := t.TempDir()
	campaignPath = filepath.Join(dir, "mini.json")
	if err := os.WriteFile(campaignPath, []byte(miniCampaign), 0o644); err != nil {
		t.Fatal(err)
	}
	return campaignPath, filepath.Join(dir, "mini.result")
}

// TestCampaignRunsAndResumes: -campaign executes the grid, checkpoints with
// -campaign-max-cells, resumes to completion, and renders one sweep per
// combination.
func TestCampaignRunsAndResumes(t *testing.T) {
	campaignPath, resultPath := writeMiniCampaign(t)
	var out bytes.Buffer
	if err := run([]string{"-campaign", campaignPath, "-campaign-out", resultPath, "-campaign-max-cells", "1"}, &out); err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if !strings.Contains(out.String(), "campaign checkpointed: 1/2 cells") {
		t.Fatalf("partial run output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-campaign", campaignPath, "-campaign-out", resultPath}, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"=== Campaign mini — 2/2 cells",
		"-- evader.kind=fast --",
		"-- evader.kind=none --",
		"campaign complete: 2 cells finalized",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("resume output missing %q:\n%s", want, text)
		}
	}
}

// TestCampaignFlagValidation: the campaign-shaping flags demand -campaign.
func TestCampaignFlagValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-campaign-out", "x.result"}, &out)
	if err == nil || !strings.Contains(err.Error(), "need -campaign") {
		t.Fatalf("error = %v, want a need-campaign rejection", err)
	}
	err = run([]string{"-campaign-max-cells", "3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "need -campaign") {
		t.Fatalf("error = %v, want a need-campaign rejection", err)
	}
}

// TestCampaignDefaultResultPath: without -campaign-out the result lands
// next to the campaign file.
func TestCampaignDefaultResultPath(t *testing.T) {
	campaignPath, _ := writeMiniCampaign(t)
	var out bytes.Buffer
	if err := run([]string{"-campaign", campaignPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	derived := strings.TrimSuffix(campaignPath, ".json") + ".result"
	if _, err := os.Stat(derived); err != nil {
		t.Fatalf("derived result path: %v", err)
	}
}

// TestRateETA: the progress throughput suffix guards its divisions and
// drops the ETA once everything is done.
func TestRateETA(t *testing.T) {
	if got := rateETA(0, 10, time.Second); got != "" {
		t.Fatalf("rateETA(0, ...) = %q, want empty", got)
	}
	if got := rateETA(3, 10, 0); got != "" {
		t.Fatalf("rateETA(..., 0) = %q, want empty", got)
	}
	got := rateETA(5, 10, 2*time.Second)
	if !strings.Contains(got, "2.5 cells/s") || !strings.Contains(got, "ETA 2s") {
		t.Fatalf("rateETA(5, 10, 2s) = %q", got)
	}
	finished := rateETA(10, 10, 4*time.Second)
	if !strings.Contains(finished, "2.5 cells/s") || strings.Contains(finished, "ETA") {
		t.Fatalf("rateETA(10, 10, 4s) = %q", finished)
	}
	// Sub-second elapsed must extrapolate, not truncate to a zero rate.
	subSec := rateETA(1, 4, 100*time.Millisecond)
	if !strings.Contains(subSec, "10.0 cells/s") || !strings.Contains(subSec, "ETA 300ms") {
		t.Fatalf("rateETA(1, 4, 100ms) = %q", subSec)
	}
	// Overshoot (more done than planned, e.g. a resumed run re-counting)
	// still drops the ETA instead of printing a negative one.
	over := rateETA(12, 10, 4*time.Second)
	if !strings.Contains(over, "3.0 cells/s") || strings.Contains(over, "ETA") {
		t.Fatalf("rateETA(12, 10, 4s) = %q", over)
	}
	// Huge totals stay finite: a week-long ETA is rendered, not overflowed.
	huge := rateETA(1, 1_000_000, time.Second)
	if !strings.Contains(huge, "1.0 cells/s") || !strings.Contains(huge, "ETA 277h46m39s") {
		t.Fatalf("rateETA(1, 1e6, 1s) = %q", huge)
	}
}

// TestCampaignProgressShowsThroughput: -progress campaign lines carry the
// cells/sec rate.
func TestCampaignProgressShowsThroughput(t *testing.T) {
	campaignPath, resultPath := writeMiniCampaign(t)
	var out, progress bytes.Buffer
	if err := runWith([]string{"-campaign", campaignPath, "-campaign-out", resultPath, "-progress"}, &out, &progress); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := progress.String()
	if !strings.Contains(text, "campaign: 2/2 in ") || !strings.Contains(text, "cells/s") {
		t.Fatalf("progress output lacks throughput:\n%s", text)
	}
}

// TestCampaignServeRoundTrip: -campaign-serve submits to a coordinator,
// -campaign-worker drains it, and the merged result is byte-identical to
// the local -campaign path.
func TestCampaignServeRoundTrip(t *testing.T) {
	s, err := serve.New(serve.Options{DataDir: t.TempDir(), GroupKey: satin.CheckpointGroupKey})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	campaignPath, _ := writeMiniCampaign(t)
	dir := t.TempDir()
	localPath := filepath.Join(dir, "local.result")
	servePath := filepath.Join(dir, "served.result")
	var localOut bytes.Buffer
	if err := run([]string{"-campaign", campaignPath, "-campaign-out", localPath}, &localOut); err != nil {
		t.Fatalf("local run: %v", err)
	}

	done := make(chan error, 1)
	var out, progress bytes.Buffer
	go func() {
		done <- runWith([]string{
			"-campaign", campaignPath, "-campaign-serve", ts.URL,
			"-campaign-shards", "2", "-campaign-out", servePath, "-progress",
		}, &out, &progress)
	}()
	for len(s.List()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	var workerOut bytes.Buffer
	if err := run([]string{"-campaign-worker", ts.URL}, &workerOut); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("campaign-serve: %v", err)
	}
	if !strings.Contains(out.String(), "campaign complete: 2 cells finalized") {
		t.Fatalf("serve output:\n%s", out.String())
	}
	if !strings.Contains(progress.String(), "cells/s") {
		t.Fatalf("serve progress lacks throughput:\n%s", progress.String())
	}
	local, err := os.ReadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}
	served, err := os.ReadFile(servePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, served) {
		t.Fatal("sharded-serve result differs from local run bytes")
	}
}
