package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// miniCampaign is a fast real-simulation campaign: 2 evaders × 1 seed, four
// SATIN rounds each.
const miniCampaign = `{
  "version": 1,
  "name": "mini",
  "scenario": {
    "version": 1,
    "seed": 1,
    "defense": {"kind": "satin", "satin": {"tgoal": "4s", "max_rounds": 4}},
    "evader": {"kind": "fast"},
    "run": {"to_completion": true}
  },
  "grid": [{"path": "evader.kind", "values": ["fast", "none"]}],
  "seeds": {"base": 1, "count": 1}
}`

func writeMiniCampaign(t *testing.T) (campaignPath, resultPath string) {
	t.Helper()
	dir := t.TempDir()
	campaignPath = filepath.Join(dir, "mini.json")
	if err := os.WriteFile(campaignPath, []byte(miniCampaign), 0o644); err != nil {
		t.Fatal(err)
	}
	return campaignPath, filepath.Join(dir, "mini.result")
}

// TestCampaignRunsAndResumes: -campaign executes the grid, checkpoints with
// -campaign-max-cells, resumes to completion, and renders one sweep per
// combination.
func TestCampaignRunsAndResumes(t *testing.T) {
	campaignPath, resultPath := writeMiniCampaign(t)
	var out bytes.Buffer
	if err := run([]string{"-campaign", campaignPath, "-campaign-out", resultPath, "-campaign-max-cells", "1"}, &out); err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if !strings.Contains(out.String(), "campaign checkpointed: 1/2 cells") {
		t.Fatalf("partial run output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-campaign", campaignPath, "-campaign-out", resultPath}, &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"=== Campaign mini — 2/2 cells",
		"-- evader.kind=fast --",
		"-- evader.kind=none --",
		"campaign complete: 2 cells finalized",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("resume output missing %q:\n%s", want, text)
		}
	}
}

// TestCampaignFlagValidation: the campaign-shaping flags demand -campaign.
func TestCampaignFlagValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-campaign-out", "x.result"}, &out)
	if err == nil || !strings.Contains(err.Error(), "need -campaign") {
		t.Fatalf("error = %v, want a need-campaign rejection", err)
	}
	err = run([]string{"-campaign-max-cells", "3"}, &out)
	if err == nil || !strings.Contains(err.Error(), "need -campaign") {
		t.Fatalf("error = %v, want a need-campaign rejection", err)
	}
}

// TestCampaignDefaultResultPath: without -campaign-out the result lands
// next to the campaign file.
func TestCampaignDefaultResultPath(t *testing.T) {
	campaignPath, _ := writeMiniCampaign(t)
	var out bytes.Buffer
	if err := run([]string{"-campaign", campaignPath}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	derived := strings.TrimSuffix(campaignPath, ".json") + ".result"
	if _, err := os.Stat(derived); err != nil {
		t.Fatalf("derived result path: %v", err)
	}
}
