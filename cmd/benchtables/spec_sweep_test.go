package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpecSweepRunsAlone: -spec with no experiment named runs only the spec
// sweep and its samples reach -metrics-out.
func TestSpecSweepRunsAlone(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "clean.csv")
	specPath := filepath.Join("..", "..", "testdata", "specs", "clean.json")
	var out strings.Builder
	if err := run([]string{"-spec", specPath, "-seeds", "2", "-metrics-out", csvPath}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Spec sweep — clean") {
		t.Errorf("missing spec sweep section:\n%s", got)
	}
	if strings.Contains(got, "Table I") {
		t.Errorf("-spec also ran built-in experiments:\n%s", got)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"full scans", "detected"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics CSV missing %q rows:\n%s", want, data)
		}
	}
}

// TestSpecSweepDeterministic: the rendered sweep is byte-identical across
// worker counts.
func TestSpecSweepDeterministic(t *testing.T) {
	specPath := filepath.Join("..", "..", "testdata", "specs", "clean.json")
	render := func(workers string) string {
		var out strings.Builder
		if err := run([]string{"-spec", specPath, "-seeds", "3", "-workers", workers}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render("1"), render("3"); a != b {
		t.Errorf("-workers changes spec sweep output:\n%s\nvs\n%s", a, b)
	}
}

// TestSpecSweepBadFile: unreadable and invalid templates fail with
// file-scoped errors.
func TestSpecSweepBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "evader": {"kind": "ghost"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-spec", bad}, &out)
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("invalid template error %v should name the file", err)
	}
}
