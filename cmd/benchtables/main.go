// Command benchtables regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout, with paper-reported
// values alongside where applicable. It is the source of EXPERIMENTS.md.
//
// Usage:
//
//	benchtables            # everything
//	benchtables -only table1,table2,fig3,fig4,switch,recover,singlecore,race,
//	            evasion,detection,fig7,ablation,flood,syncbypass,userprober,
//	            kprober1,sensitivity
//	benchtables -detection # shorthand for -only detection (any experiment name)
//	benchtables -seed 7    # different deterministic universe
//	benchtables -quick     # reduced Fig 7 window / sensitivity grid (smoke runs)
//
// The sensitivity experiment is a sweep of sweeps: each fault-injection
// magnitude reruns the detection experiment across -seeds seeds (default 8)
// on the -workers pool, charting detection probability against perturbation
// magnitude (see EXPERIMENTS.md "Sensitivity & fault injection").
//
// Multi-seed sweeps: with -seeds N (N > 1) the sweep-capable experiments
// (detection, evasion, race) rerun across seeds seed..seed+N-1 on a worker
// pool (-workers, default GOMAXPROCS) and report per-metric distributions
// instead of one universe's numbers. Aggregation is in seed order, so the
// output is byte-identical for any -workers value.
//
//	benchtables -detection -seeds 32 -workers 8
//
// Sweep observability: -progress streams per-trial completions to stderr
// (completion order, wall clock — diagnostic only), and -metrics-out FILE
// exports every selected sweep's per-seed samples as deterministic
// `experiment,metric,seed,value` CSV rows.
//
//	benchtables -detection -seeds 32 -progress -metrics-out detection.csv
//
// Spec sweeps: -spec FILE runs a scenario spec file (see EXPERIMENTS.md
// "Spec files") as its own sweep instead of the built-in experiments: the
// template is instantiated at seeds -seed..-seed+N-1 and each instantiation
// runs through the same trial the satin-sim -spec path uses.
//
//	benchtables -spec testdata/specs/clean.json -seeds 8 -metrics-out clean.csv
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"satin"
	"satin/internal/experiment"
	"satin/internal/runner"
)

func main() {
	if err := runWith(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(1)
	}
}

// step is one regenerable experiment. fn prints the single-seed form;
// sweepFn, when non-nil, runs the multi-seed distribution form instead
// whenever -seeds N > 1, returning the sweep and its section title so run
// can render it and export the per-seed samples.
type step struct {
	name    string
	fn      func(out io.Writer, seed uint64) error
	sweepFn func(ctx context.Context, seed uint64, seeds, workers int, progress runner.Progress) (*runner.Sweep, string, error)
}

// run keeps the historical two-argument form (used throughout the tests);
// progress output is discarded.
func run(args []string, out io.Writer) error {
	return runWith(args, out, io.Discard)
}

func runWith(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Uint64("seed", 1, "root seed for all deterministic streams")
	only := fs.String("only", "", "comma-separated experiment list (default: all)")
	quick := fs.Bool("quick", false, "shrink the Fig 7 measurement window")
	seeds := fs.Int("seeds", 1, "number of independent seeds; > 1 switches detection/evasion/race to sweep mode")
	workers := fs.Int("workers", 0, "worker goroutines for multi-seed sweeps (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "stream per-trial sweep progress to stderr")
	metricsOut := fs.String("metrics-out", "", "export every sweep's per-seed samples to this CSV file (needs -seeds > 1)")
	profileOut := fs.String("profile-out", "", "run the profiled detection sweep and write the merged per-core span attribution table to this file")
	specFile := fs.String("spec", "", "sweep this scenario spec file across -seeds seeds instead of a built-in experiment")

	steps := allSteps(quick, seeds, workers)
	// Every experiment name is also a boolean shorthand flag:
	// `-detection` == `-only detection`.
	shorthand := map[string]*bool{}
	for _, st := range steps {
		shorthand[st.name] = fs.Bool(st.name, false, fmt.Sprintf("run the %s experiment (shorthand for -only %s)", st.name, st.name))
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds %d: need at least 1", *seeds)
	}
	if *metricsOut != "" && *seeds < 2 {
		return fmt.Errorf("-metrics-out exports per-seed sweep samples; it needs -seeds N > 1")
	}

	known := map[string]bool{}
	for _, st := range steps {
		known[st.name] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(stepNames(steps), ", "))
			}
			want[name] = true
		}
	}
	for name, set := range shorthand {
		if *set {
			want[name] = true
		}
	}
	// With -profile-out or -spec and no experiment named, that sweep IS the
	// run: don't drag the full suite along.
	selected := func(name string) bool {
		if len(want) == 0 {
			return *profileOut == "" && *specFile == ""
		}
		return want[name]
	}

	ran := 0
	var sweeps []*runner.Sweep
	for _, st := range steps {
		if !selected(st.name) {
			continue
		}
		if *seeds > 1 && st.sweepFn != nil {
			var observer runner.Progress
			if *progress {
				name, base := st.name, *seed
				observer = func(done, total, index int, elapsed time.Duration, trialErr error) {
					status := "ok"
					if trialErr != nil {
						status = "FAILED: " + trialErr.Error()
					}
					fmt.Fprintf(errOut, "%s: %d/%d seed %d in %v %s\n",
						name, done, total, base+uint64(index), elapsed.Truncate(time.Millisecond), status)
				}
			}
			sw, title, err := st.sweepFn(context.Background(), *seed, *seeds, *workers, observer)
			if err != nil {
				return fmt.Errorf("%s: %w", st.name, err)
			}
			section(out, title)
			fmt.Fprint(out, sw.Render())
			sweeps = append(sweeps, sw)
		} else if err := st.fn(out, *seed); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		ran++
	}
	if *specFile != "" {
		sw, err := runSpecFileSweep(*specFile, *seed, *seeds, *workers, *progress, errOut)
		if err != nil {
			return err
		}
		section(out, fmt.Sprintf("Spec sweep — %s (%s, %d seed(s))", sw.Name, *specFile, *seeds))
		fmt.Fprint(out, sw.Render())
		sweeps = append(sweeps, sw)
		ran++
	}
	if *profileOut != "" {
		if err := writeProfileSweep(out, *profileOut, *seed, *seeds, *workers, *quick); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	if *metricsOut != "" {
		if len(sweeps) == 0 {
			return fmt.Errorf("-metrics-out: no sweep-capable experiment selected")
		}
		if err := writeSweepCSV(*metricsOut, sweeps); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmetrics: %d sweeps exported to %s\n", len(sweeps), *metricsOut)
	}
	return nil
}

// writeSweepCSV concatenates the sweeps' per-seed samples into one CSV file
// with a single header row.
func writeSweepCSV(path string, sweeps []*runner.Sweep) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	defer f.Close()
	for i, sw := range sweeps {
		var buf bytes.Buffer
		if err := sw.WriteCSV(&buf); err != nil {
			return err
		}
		data := buf.Bytes()
		if i > 0 {
			// Drop the repeated header line.
			if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
				data = data[nl+1:]
			}
		}
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("writing metrics file: %w", err)
		}
	}
	return nil
}

// runSpecFileSweep sweeps the spec template in path across seeds
// seed..seed+seeds-1 with the facade's canonical trial — the same builder
// and metric reduction satin-sim -spec uses, so per-seed samples line up
// with single runs of the instantiated specs.
func runSpecFileSweep(path string, seed uint64, seeds, workers int, progress bool, errOut io.Writer) (*runner.Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	tmpl, err := satin.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	var observer runner.Progress
	if progress {
		observer = func(done, total, index int, elapsed time.Duration, trialErr error) {
			status := "ok"
			if trialErr != nil {
				status = "FAILED: " + trialErr.Error()
			}
			fmt.Fprintf(errOut, "spec: %d/%d seed %d in %v %s\n",
				done, total, seed+uint64(index), elapsed.Truncate(time.Millisecond), status)
		}
	}
	sw, err := experiment.RunSpecSweep(context.Background(), tmpl, seed, seeds, workers, observer, satin.RunSpecTrial)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return sw, nil
}

// writeProfileSweep runs the §VI-B1 detection experiment with the span
// profiler attached for every seed, renders the per-seed metric
// distributions, and writes the seed-merged per-core attribution table to
// path. The merge is in seed order — byte-identical for any -workers value.
func writeProfileSweep(out io.Writer, path string, seed uint64, seeds, workers int, quick bool) error {
	cfg := experiment.DefaultDetectionConfig()
	cfg.Seed = seed
	if quick {
		cfg.FullScans = 2
	}
	sw, merged, err := experiment.RunDetectionProfileSweep(context.Background(), cfg, seeds, workers, nil)
	if err != nil {
		return err
	}
	section(out, fmt.Sprintf("Profiled detection sweep — span attribution merged over %d seed(s)", seeds))
	fmt.Fprint(out, sw.Render())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating profile file: %w", err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, merged.Render()); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nprofile: merged attribution for %d seed(s) written to %s\n", seeds, path)
	return nil
}

func stepNames(steps []step) []string {
	names := make([]string, len(steps))
	for i, st := range steps {
		names[i] = st.name
	}
	return names
}

func allSteps(quick *bool, seeds, workers *int) []step {
	return []step{
		{name: "table1", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunTable1(seed)
			if err != nil {
				return err
			}
			section(out, "Table I — Secure World Introspection Time (paper: A53 hash avg 1.07e-8 s, A57 hash avg 6.71e-9 s)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "switch", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunSwitch(seed)
			if err != nil {
				return err
			}
			section(out, "Ts_switch (§IV-B1; paper: 2.38e-6 s – 3.60e-6 s, similar across core types)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "recover", fn: func(out io.Writer, seed uint64) error {
			res := experiment.RunRecover(seed)
			section(out, "Tns_recover (§IV-B2; paper: A53 avg 5.80e-3 s, A57 avg 4.96e-3 s)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "table2", fn: func(out io.Writer, seed uint64) error {
			res := experiment.RunTable2(seed)
			section(out, "Table II — Probing Threshold on Multi-Core (paper: avg 2.61e-4 s @8s ... 6.61e-4 s @300s)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "table2thread", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunTable2ThreadLevel(seed, 8*time.Second, 3)
			if err != nil {
				return err
			}
			section(out, "Table II cross-validation — thread-level prober vs the calibrated model (8 s rounds)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "fig3", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunFig3(seed)
			if err != nil {
				return err
			}
			section(out, "Figure 3 — Race Condition Between Two Worlds (measured timelines)")
			fmt.Fprint(out, experiment.RenderFig3(res))
			return nil
		}},
		{name: "fig4", fn: func(out io.Writer, seed uint64) error {
			res := experiment.RunTable2(seed + 100)
			section(out, "Figure 4 — KProber Probing Threshold Stability (box plots)")
			fmt.Fprint(out, res.RenderFig4())
			fmt.Fprintln(out)
			fmt.Fprint(out, res.ChartFig4(64))
			return nil
		}},
		{name: "singlecore", fn: func(out io.Writer, seed uint64) error {
			res := experiment.RunSingleCore(seed, 8*time.Second)
			section(out, "Single-core probing (§IV-B2; paper: ≈1/4 of the all-core threshold)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "race", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunRace(seed)
			if err != nil {
				return err
			}
			section(out, "Race-condition analysis (§IV-C; paper: S ≤ 1,218,351 B, ≈90% unprotected)")
			fmt.Fprint(out, res.Render())
			return nil
		}, sweepFn: func(ctx context.Context, seed uint64, seeds, workers int, progress runner.Progress) (*runner.Sweep, string, error) {
			sw, err := experiment.RunRaceSweepObserved(ctx, seed, seeds, workers, progress)
			return sw, "Race-condition analysis, multi-seed (§IV-C; paper: ≈90% unprotected)", err
		}},
		{name: "evasion", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunEvasion(seed, 10, 8*time.Second)
			if err != nil {
				return err
			}
			section(out, "TZ-Evader vs baseline introspection (§IV premise; expected: 100% evasion)")
			fmt.Fprint(out, res.Render())
			return nil
		}, sweepFn: func(ctx context.Context, seed uint64, seeds, workers int, progress runner.Progress) (*runner.Sweep, string, error) {
			sw, err := experiment.RunEvasionSweepObserved(ctx, seed, seeds, workers, 10, 8*time.Second, progress)
			return sw, "TZ-Evader vs baseline, multi-seed (§IV premise; expected: 100% evasion)", err
		}},
		{name: "detection", fn: func(out io.Writer, seed uint64) error {
			cfg := experiment.DefaultDetectionConfig()
			cfg.Seed = seed
			res, err := experiment.RunDetection(cfg)
			if err != nil {
				return err
			}
			section(out, "SATIN detection experiment (§VI-B1)")
			fmt.Fprint(out, res.Render())
			return nil
		}, sweepFn: func(ctx context.Context, seed uint64, seeds, workers int, progress runner.Progress) (*runner.Sweep, string, error) {
			cfg := experiment.DefaultDetectionConfig()
			cfg.Seed = seed
			sw, err := experiment.RunDetectionSweepObserved(ctx, cfg, seeds, workers, progress)
			return sw, "SATIN detection experiment, multi-seed (§VI-B1; paper: 10/10, 0 FP/FN at seed 1)", err
		}},
		{name: "fig7", fn: func(out io.Writer, seed uint64) error {
			cfg := experiment.DefaultFig7Config()
			cfg.Seed = seed
			if *quick {
				cfg.Window = 60 * time.Second
			}
			res, err := experiment.RunFig7(cfg)
			if err != nil {
				return err
			}
			section(out, "Figure 7 — SATIN Overhead (paper: avg 0.711% 1-task / 0.848% 6-task; spikes: file copy 256B 3.556%, context switching 3.912%)")
			fmt.Fprint(out, res.Render())
			fmt.Fprintln(out, "\n1-task degradation:")
			fmt.Fprint(out, res.Chart(1, 50))
			fmt.Fprintln(out, "6-task degradation:")
			fmt.Fprint(out, res.Chart(6, 50))
			return nil
		}},
		{name: "ablation", fn: func(out io.Writer, seed uint64) error {
			cfg := experiment.DefaultAblationConfig()
			cfg.Seed = seed
			res, err := experiment.RunAblation(cfg)
			if err != nil {
				return err
			}
			section(out, "Ablation — SATIN design choices vs best-response evaders (DESIGN.md E11)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "decompose", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunDecomposition(seed, 240*time.Second)
			if err != nil {
				return err
			}
			section(out, "Overhead decomposition — structural stall vs fitted warm-state penalty (context switching)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "msweep", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunMSweep(seed, 0.5)
			if err != nil {
				return err
			}
			section(out, "Trace-size sweep — Tns_recover is the evader's bottleneck (§IV-C observation 4)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "flood", fn: func(out io.Writer, seed uint64) error {
			cfg := experiment.DefaultFloodConfig()
			cfg.Seed = seed
			res, err := experiment.RunFlood(cfg)
			if err != nil {
				return err
			}
			section(out, fmt.Sprintf("Interrupt-flood ablation — why SATIN requires SCR_EL3.IRQ=0 (§II-B/§V-B); %.0f SGIs/s per core", res.Rate))
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "syncbypass", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunSyncBypass(seed)
			if err != nil {
				return err
			}
			section(out, "Layered defense — synchronous guard, AP-flip bypass, asynchronous catch (§VII-A/§VII-C)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "userprober", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunUserProber(seed)
			if err != nil {
				return err
			}
			section(out, "User-level prober (§III-B1; paper: Tns_delay < 5.97e-3 s vs 8.04e-2 s check)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "kprober1", fn: func(out io.Writer, seed uint64) error {
			res, err := experiment.RunKProber1Exposure(seed, 3)
			if err != nil {
				return err
			}
			section(out, "KProber-I self-exposure — the vector hijack is introspection-visible (§III-C1)")
			fmt.Fprint(out, res.Render())
			return nil
		}},
		{name: "sensitivity", fn: func(out io.Writer, seed uint64) error {
			// The sensitivity chart is multi-seed by construction: every
			// magnitude is its own detection sweep, so -seeds and -workers
			// apply here even without the generic sweep path.
			cfg := experiment.DefaultSensitivityConfig()
			cfg.Detection.Seed = seed
			cfg.Workers = *workers
			if *seeds > 1 {
				cfg.Seeds = *seeds
			}
			if *quick {
				cfg.Magnitudes = []float64{0, 2, 6}
				cfg.Detection.FullScans = 4
			}
			res, err := experiment.RunSensitivity(context.Background(), cfg, nil)
			if err != nil {
				return err
			}
			section(out, fmt.Sprintf("Fault-injection sensitivity — detection probability vs perturbation magnitude (%d seeds each)", cfg.Seeds))
			fmt.Fprint(out, res.Render())
			if fb := res.FirstBreak(); fb >= 0 {
				fmt.Fprintf(out, "first magnitude breaking 10/10 detection: %g\n", fb)
			} else {
				fmt.Fprintln(out, "detection never degraded across the charted magnitudes")
			}
			return nil
		}},
	}
}

func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
}
