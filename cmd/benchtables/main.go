// Command benchtables regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout, with paper-reported
// values alongside where applicable. It is the source of EXPERIMENTS.md.
//
// Usage:
//
//	benchtables            # everything
//	benchtables -only table1,table2,fig3,fig4,switch,recover,singlecore,race,
//	            evasion,detection,fig7,ablation,flood,syncbypass,userprober,
//	            kprober1,sensitivity
//	benchtables -detection # shorthand for -only detection (any experiment name)
//	benchtables -seed 7    # different deterministic universe
//	benchtables -quick     # reduced Fig 7 window / sensitivity grid (smoke runs)
//
// Every experiment is dispatched through experiment.Registry() — the same
// name-keyed table the campaign cell executor uses — so `-only <name>`, the
// shorthand flags, and campaign cells all agree on what an experiment name
// means.
//
// The sensitivity experiment is a sweep of sweeps: each fault-injection
// magnitude reruns the detection experiment across -seeds seeds (default 8)
// on the -workers pool, charting detection probability against perturbation
// magnitude (see EXPERIMENTS.md "Sensitivity & fault injection").
//
// Multi-seed sweeps: with -seeds N (N > 1) the sweep-capable experiments
// (detection, evasion, race) rerun across seeds seed..seed+N-1 on a worker
// pool (-workers, default GOMAXPROCS) and report per-metric distributions
// instead of one universe's numbers. Aggregation is in seed order, so the
// output is byte-identical for any -workers value.
//
//	benchtables -detection -seeds 32 -workers 8
//
// Sweep observability: -progress streams per-trial completions to stderr
// (completion order, wall clock — diagnostic only), and -metrics-out FILE
// exports every selected sweep's per-seed samples as deterministic
// `experiment,metric,seed,value` CSV rows.
//
//	benchtables -detection -seeds 32 -progress -metrics-out detection.csv
//
// Spec sweeps: -spec FILE runs a scenario spec file (see EXPERIMENTS.md
// "Spec files") as its own sweep instead of the built-in experiments: the
// template is instantiated at seeds -seed..-seed+N-1 and each instantiation
// runs through the same trial the satin-sim -spec path uses.
//
//	benchtables -spec testdata/specs/clean.json -seeds 8 -metrics-out clean.csv
//
// Campaigns: -campaign FILE expands a campaign spec (see EXPERIMENTS.md
// "Campaigns") into its cell grid and executes it with checkpointed resume:
//
//	benchtables -campaign grid.json -campaign-out grid.result -progress
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"satin"
	"satin/internal/experiment"
	"satin/internal/runner"
)

func main() {
	if err := runWith(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		os.Exit(1)
	}
}

// run keeps the historical two-argument form (used throughout the tests);
// progress output is discarded.
func run(args []string, out io.Writer) error {
	return runWith(args, out, io.Discard)
}

func runWith(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Uint64("seed", 1, "root seed for all deterministic streams")
	only := fs.String("only", "", "comma-separated experiment list (default: all)")
	quick := fs.Bool("quick", false, "shrink the Fig 7 measurement window")
	seeds := fs.Int("seeds", 1, "number of independent seeds; > 1 switches detection/evasion/race to sweep mode")
	workers := fs.Int("workers", 0, "worker goroutines for multi-seed sweeps (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "stream per-trial sweep progress to stderr")
	metricsOut := fs.String("metrics-out", "", "export every sweep's per-seed samples to this CSV file (needs -seeds > 1)")
	profileOut := fs.String("profile-out", "", "run the profiled detection sweep and write the merged per-core span attribution table to this file")
	specFile := fs.String("spec", "", "sweep this scenario spec file across -seeds seeds instead of a built-in experiment")
	campaignFile := fs.String("campaign", "", "execute this campaign spec file (grid × faults × seeds) with checkpointed resume")
	campaignOut := fs.String("campaign-out", "", "campaign result/checkpoint file (default: <campaign>.result)")
	campaignMaxCells := fs.Int("campaign-max-cells", 0, "stop the campaign after N newly completed cells (checkpointed; 0 = run to completion)")
	campaignFork := fs.Bool("campaign-fork", true, "fork shared-prefix cell groups from one checkpoint instead of running each from scratch (identical results either way)")
	campaignServe := fs.String("campaign-serve", "", "submit -campaign to this satin-serve URL for sharded cross-process execution and render the merged result (byte-identical to a local run)")
	campaignShards := fs.Int("campaign-shards", 2, "with -campaign-serve: number of shards to partition the campaign into")
	campaignWorker := fs.String("campaign-worker", "", "run a sharded-campaign worker loop against this satin-serve URL until no work remains")

	defs := experiment.Registry()
	// Every experiment name is also a boolean shorthand flag:
	// `-detection` == `-only detection`.
	shorthand := map[string]*bool{}
	for _, def := range defs {
		shorthand[def.Name] = fs.Bool(def.Name, false, fmt.Sprintf("run the %s experiment (shorthand for -only %s)", def.Name, def.Name))
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds %d: need at least 1", *seeds)
	}
	if *metricsOut != "" && *seeds < 2 {
		return fmt.Errorf("-metrics-out exports per-seed sweep samples; it needs -seeds N > 1")
	}
	if *campaignWorker != "" {
		return runCampaignWorker(errOut, *campaignWorker, *workers, *campaignFork)
	}
	if *campaignFile != "" {
		if *campaignServe != "" {
			if *campaignMaxCells != 0 {
				return fmt.Errorf("-campaign-max-cells is a local-run control; it does not combine with -campaign-serve")
			}
			return runCampaignServe(out, errOut, *campaignFile, *campaignOut, *campaignServe, *campaignShards, *progress)
		}
		return runCampaignFile(out, errOut, *campaignFile, *campaignOut, *workers, *campaignMaxCells, *progress, *campaignFork)
	}
	if *campaignOut != "" || *campaignMaxCells != 0 || *campaignServe != "" {
		return fmt.Errorf("-campaign-out/-campaign-max-cells/-campaign-serve configure a campaign run; they need -campaign FILE")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiment.Lookup(name); !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(experiment.Names(), ", "))
			}
			want[name] = true
		}
	}
	for name, set := range shorthand {
		if *set {
			want[name] = true
		}
	}
	// With -profile-out or -spec and no experiment named, that sweep IS the
	// run: don't drag the full suite along.
	selected := func(name string) bool {
		if len(want) == 0 {
			return *profileOut == "" && *specFile == ""
		}
		return want[name]
	}

	ran := 0
	var sweeps []*runner.Sweep
	for _, def := range defs {
		if !selected(def.Name) {
			continue
		}
		if *seeds > 1 && def.Sweepable() {
			var observer runner.Progress
			if *progress {
				name, base := def.Name, *seed
				observer = func(done, total, index int, elapsed time.Duration, trialErr error) {
					status := "ok"
					if trialErr != nil {
						status = "FAILED: " + trialErr.Error()
					}
					fmt.Fprintf(errOut, "%s: %d/%d seed %d in %v %s\n",
						name, done, total, base+uint64(index), elapsed.Truncate(time.Millisecond), status)
				}
			}
			sw, title, err := def.Sweep(context.Background(), *seed, experiment.Options{
				Seeds: *seeds, Workers: *workers, Progress: observer,
			})
			if err != nil {
				return fmt.Errorf("%s: %w", def.Name, err)
			}
			section(out, title)
			fmt.Fprint(out, sw.Render())
			sweeps = append(sweeps, sw)
		} else if err := def.Run(out, experiment.RunConfig{
			Seed: *seed, Quick: *quick, Seeds: *seeds, Workers: *workers,
		}); err != nil {
			return fmt.Errorf("%s: %w", def.Name, err)
		}
		ran++
	}
	if *specFile != "" {
		sw, err := runSpecFileSweep(*specFile, *seed, *seeds, *workers, *progress, errOut)
		if err != nil {
			return err
		}
		section(out, fmt.Sprintf("Spec sweep — %s (%s, %d seed(s))", sw.Name, *specFile, *seeds))
		fmt.Fprint(out, sw.Render())
		sweeps = append(sweeps, sw)
		ran++
	}
	if *profileOut != "" {
		if err := writeProfileSweep(out, *profileOut, *seed, *seeds, *workers, *quick); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	if *metricsOut != "" {
		if len(sweeps) == 0 {
			return fmt.Errorf("-metrics-out: no sweep-capable experiment selected")
		}
		if err := writeSweepCSV(*metricsOut, sweeps); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nmetrics: %d sweeps exported to %s\n", len(sweeps), *metricsOut)
	}
	return nil
}

// writeSweepCSV concatenates the sweeps' per-seed samples into one CSV file
// with a single header row.
func writeSweepCSV(path string, sweeps []*runner.Sweep) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating metrics file: %w", err)
	}
	defer f.Close()
	for i, sw := range sweeps {
		var buf bytes.Buffer
		if err := sw.WriteCSV(&buf); err != nil {
			return err
		}
		data := buf.Bytes()
		if i > 0 {
			// Drop the repeated header line.
			if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
				data = data[nl+1:]
			}
		}
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("writing metrics file: %w", err)
		}
	}
	return nil
}

// runSpecFileSweep sweeps the spec template in path across seeds
// seed..seed+seeds-1 with the facade's canonical trial — the same builder
// and metric reduction satin-sim -spec uses, so per-seed samples line up
// with single runs of the instantiated specs.
func runSpecFileSweep(path string, seed uint64, seeds, workers int, progress bool, errOut io.Writer) (*runner.Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	tmpl, err := satin.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	var observer runner.Progress
	if progress {
		observer = func(done, total, index int, elapsed time.Duration, trialErr error) {
			status := "ok"
			if trialErr != nil {
				status = "FAILED: " + trialErr.Error()
			}
			fmt.Fprintf(errOut, "spec: %d/%d seed %d in %v %s\n",
				done, total, seed+uint64(index), elapsed.Truncate(time.Millisecond), status)
		}
	}
	sw, err := experiment.RunSpecSweep(context.Background(), tmpl, seed, seeds, workers, observer, satin.RunSpecTrial)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return sw, nil
}

// writeProfileSweep runs the §VI-B1 detection experiment with the span
// profiler attached for every seed, renders the per-seed metric
// distributions, and writes the seed-merged per-core attribution table to
// path. The merge is in seed order — byte-identical for any -workers value.
func writeProfileSweep(out io.Writer, path string, seed uint64, seeds, workers int, quick bool) error {
	cfg := experiment.DefaultDetectionConfig()
	cfg.Seed = seed
	if quick {
		cfg.FullScans = 2
	}
	sw, merged, err := experiment.RunDetectionProfileSweep(context.Background(), cfg, experiment.Options{
		Seeds: seeds, Workers: workers,
	})
	if err != nil {
		return err
	}
	section(out, fmt.Sprintf("Profiled detection sweep — span attribution merged over %d seed(s)", seeds))
	fmt.Fprint(out, sw.Render())
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating profile file: %w", err)
	}
	defer f.Close()
	if _, err := io.WriteString(f, merged.Render()); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nprofile: merged attribution for %d seed(s) written to %s\n", seeds, path)
	return nil
}

func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
}
