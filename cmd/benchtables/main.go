// Command benchtables regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout, with paper-reported
// values alongside where applicable. It is the source of EXPERIMENTS.md.
//
// Usage:
//
//	benchtables            # everything
//	benchtables -only table1,table2,fig3,fig4,switch,recover,singlecore,race,
//	            evasion,detection,fig7,ablation,flood,syncbypass,userprober,kprober1
//	benchtables -seed 7    # different deterministic universe
//	benchtables -quick     # reduced Fig 7 window (for smoke runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"satin/internal/experiment"
)

func main() {
	seed := flag.Uint64("seed", 1, "root seed for all deterministic streams")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	quick := flag.Bool("quick", false, "shrink the Fig 7 measurement window")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table1", func() error {
			res, err := experiment.RunTable1(*seed)
			if err != nil {
				return err
			}
			section("Table I — Secure World Introspection Time (paper: A53 hash avg 1.07e-8 s, A57 hash avg 6.71e-9 s)")
			fmt.Print(res.Render())
			return nil
		}},
		{"switch", func() error {
			res, err := experiment.RunSwitch(*seed)
			if err != nil {
				return err
			}
			section("Ts_switch (§IV-B1; paper: 2.38e-6 s – 3.60e-6 s, similar across core types)")
			fmt.Print(res.Render())
			return nil
		}},
		{"recover", func() error {
			res := experiment.RunRecover(*seed)
			section("Tns_recover (§IV-B2; paper: A53 avg 5.80e-3 s, A57 avg 4.96e-3 s)")
			fmt.Print(res.Render())
			return nil
		}},
		{"table2", func() error {
			res := experiment.RunTable2(*seed)
			section("Table II — Probing Threshold on Multi-Core (paper: avg 2.61e-4 s @8s ... 6.61e-4 s @300s)")
			fmt.Print(res.Render())
			return nil
		}},
		{"table2thread", func() error {
			res, err := experiment.RunTable2ThreadLevel(*seed, 8*time.Second, 3)
			if err != nil {
				return err
			}
			section("Table II cross-validation — thread-level prober vs the calibrated model (8 s rounds)")
			fmt.Print(res.Render())
			return nil
		}},
		{"fig3", func() error {
			res, err := experiment.RunFig3(*seed)
			if err != nil {
				return err
			}
			section("Figure 3 — Race Condition Between Two Worlds (measured timelines)")
			fmt.Print(experiment.RenderFig3(res))
			return nil
		}},
		{"fig4", func() error {
			res := experiment.RunTable2(*seed + 100)
			section("Figure 4 — KProber Probing Threshold Stability (box plots)")
			fmt.Print(res.RenderFig4())
			fmt.Println()
			fmt.Print(res.ChartFig4(64))
			return nil
		}},
		{"singlecore", func() error {
			res := experiment.RunSingleCore(*seed, 8*time.Second)
			section("Single-core probing (§IV-B2; paper: ≈1/4 of the all-core threshold)")
			fmt.Print(res.Render())
			return nil
		}},
		{"race", func() error {
			res, err := experiment.RunRace(*seed)
			if err != nil {
				return err
			}
			section("Race-condition analysis (§IV-C; paper: S ≤ 1,218,351 B, ≈90% unprotected)")
			fmt.Print(res.Render())
			return nil
		}},
		{"evasion", func() error {
			res, err := experiment.RunEvasion(*seed, 10, 8*time.Second)
			if err != nil {
				return err
			}
			section("TZ-Evader vs baseline introspection (§IV premise; expected: 100% evasion)")
			fmt.Print(res.Render())
			return nil
		}},
		{"detection", func() error {
			cfg := experiment.DefaultDetectionConfig()
			cfg.Seed = *seed
			res, err := experiment.RunDetection(cfg)
			if err != nil {
				return err
			}
			section("SATIN detection experiment (§VI-B1)")
			fmt.Print(res.Render())
			return nil
		}},
		{"fig7", func() error {
			cfg := experiment.DefaultFig7Config()
			cfg.Seed = *seed
			if *quick {
				cfg.Window = 60 * time.Second
			}
			res, err := experiment.RunFig7(cfg)
			if err != nil {
				return err
			}
			section("Figure 7 — SATIN Overhead (paper: avg 0.711% 1-task / 0.848% 6-task; spikes: file copy 256B 3.556%, context switching 3.912%)")
			fmt.Print(res.Render())
			fmt.Println("\n1-task degradation:")
			fmt.Print(res.Chart(1, 50))
			fmt.Println("6-task degradation:")
			fmt.Print(res.Chart(6, 50))
			return nil
		}},
		{"ablation", func() error {
			cfg := experiment.DefaultAblationConfig()
			cfg.Seed = *seed
			res, err := experiment.RunAblation(cfg)
			if err != nil {
				return err
			}
			section("Ablation — SATIN design choices vs best-response evaders (DESIGN.md E11)")
			fmt.Print(res.Render())
			return nil
		}},
		{"decompose", func() error {
			res, err := experiment.RunDecomposition(*seed, 240*time.Second)
			if err != nil {
				return err
			}
			section("Overhead decomposition — structural stall vs fitted warm-state penalty (context switching)")
			fmt.Print(res.Render())
			return nil
		}},
		{"msweep", func() error {
			res, err := experiment.RunMSweep(*seed, 0.5)
			if err != nil {
				return err
			}
			section("Trace-size sweep — Tns_recover is the evader's bottleneck (§IV-C observation 4)")
			fmt.Print(res.Render())
			return nil
		}},
		{"flood", func() error {
			cfg := experiment.DefaultFloodConfig()
			cfg.Seed = *seed
			res, err := experiment.RunFlood(cfg)
			if err != nil {
				return err
			}
			section(fmt.Sprintf("Interrupt-flood ablation — why SATIN requires SCR_EL3.IRQ=0 (§II-B/§V-B); %.0f SGIs/s per core", res.Rate))
			fmt.Print(res.Render())
			return nil
		}},
		{"syncbypass", func() error {
			res, err := experiment.RunSyncBypass(*seed)
			if err != nil {
				return err
			}
			section("Layered defense — synchronous guard, AP-flip bypass, asynchronous catch (§VII-A/§VII-C)")
			fmt.Print(res.Render())
			return nil
		}},
		{"userprober", func() error {
			res, err := experiment.RunUserProber(*seed)
			if err != nil {
				return err
			}
			section("User-level prober (§III-B1; paper: Tns_delay < 5.97e-3 s vs 8.04e-2 s check)")
			fmt.Print(res.Render())
			return nil
		}},
		{"kprober1", func() error {
			res, err := experiment.RunKProber1Exposure(*seed, 3)
			if err != nil {
				return err
			}
			section("KProber-I self-exposure — the vector hijack is introspection-visible (§III-C1)")
			fmt.Print(res.Render())
			return nil
		}},
	}

	ran := 0
	for _, st := range steps {
		if !selected(st.name) {
			continue
		}
		if err := st.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", st.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtables: no experiment matched %q\n", *only)
		os.Exit(1)
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
