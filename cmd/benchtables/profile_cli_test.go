package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunProfileOutWritesMergedAttribution: -profile-out runs the profiled
// detection sweep alone (no full suite) and writes the merged table.
func TestRunProfileOutWritesMergedAttribution(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.txt")
	var out strings.Builder
	if err := run([]string{"-quick", "-seeds", "2", "-profile-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Profiled detection sweep") {
		t.Errorf("missing profiled sweep section:\n%s", got)
	}
	if strings.Contains(got, "Table I") {
		t.Errorf("-profile-out alone must not run the full suite:\n%s", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Per-core virtual-time attribution (2 seed(s)") {
		t.Errorf("merged attribution missing or wrong seed count:\n%s", data)
	}
}

// TestRunProfileOutDeterministicAcrossWorkers: the written table must be
// byte-identical for 1 worker and 4.
func TestRunProfileOutDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	render := func(workers string) string {
		path := filepath.Join(dir, "p"+workers+".txt")
		var out strings.Builder
		if err := run([]string{"-quick", "-seeds", "3", "-workers", workers, "-profile-out", path}, &out); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if one, four := render("1"), render("4"); one != four {
		t.Fatalf("merged attribution differs across worker counts:\n--- 1 ---\n%s--- 4 ---\n%s", one, four)
	}
}

// TestRunProfileOutComposesWithSelection: naming an experiment alongside
// -profile-out runs both.
func TestRunProfileOutComposesWithSelection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.txt")
	var out strings.Builder
	if err := run([]string{"-quick", "-recover", "-profile-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Tns_recover") || !strings.Contains(got, "Profiled detection sweep") {
		t.Errorf("expected both the named experiment and the profiled sweep:\n%s", got)
	}
}
