package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"satin"
	"satin/internal/campaign"
	"satin/internal/obs"
	"satin/internal/trace"
)

// runCampaignFile executes (or resumes) the campaign spec at path against
// its result file: expand the cell grid, run the not-yet-checkpointed cells
// on the worker pool, and render the merged per-combination sweeps. With
// maxCells > 0 the run stops early after that many new cells — the
// deterministic stand-in for a kill, used by `make campaign-smoke` to
// exercise resume.
func runCampaignFile(out, errOut io.Writer, path, outPath string, workers, maxCells int, progress, fork bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading campaign: %w", err)
	}
	c, err := campaign.Parse(data)
	if err != nil {
		return fmt.Errorf("campaign %s: %w", path, err)
	}
	if outPath == "" {
		outPath = campaign.DefaultResultPath(path)
	}

	opt := campaign.RunOptions{
		Workers:   workers,
		MaxCells:  maxCells,
		SpecTrial: satin.RunSpecTrial,
	}
	if fork {
		// Shared-prefix forking: cells that differ only in their (post-
		// barrier) fault plan run the common prefix once from a checkpoint.
		// Result bytes are identical with or without it.
		opt.GroupKey = satin.CheckpointGroupKey
		opt.GroupTrial = satin.RunCheckpointGroup
	}
	if progress {
		// Progress rides the same obs bus the simulators publish on: the
		// executor emits one KindCell event per completion and this sink
		// renders it — so any other subscriber (a TUI, a log shipper) sees
		// the identical stream.
		bus := obs.NewBus()
		bus.Subscribe(func(e trace.Event) {
			if e.Kind == trace.KindCell {
				fmt.Fprintf(errOut, "campaign: cell %d %s\n", e.Area, e.Detail)
			}
		})
		opt.Bus = bus
		opt.Progress = func(done, total, index int, elapsed time.Duration, trialErr error) {
			fmt.Fprintf(errOut, "campaign: %d/%d in %v\n", done, total, elapsed.Truncate(time.Millisecond))
		}
	}

	res, err := campaign.Run(context.Background(), c, outPath, opt)
	if err != nil {
		return err
	}
	renderCampaign(out, c, res, outPath)
	return nil
}

// renderCampaign prints the campaign summary and the per-combination sweep
// tables for every checkpointed cell.
func renderCampaign(out io.Writer, c campaign.Spec, res campaign.RunResult, outPath string) {
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	section(out, fmt.Sprintf("Campaign %s — %d/%d cells (%s)", name, len(res.Results), len(res.Cells), outPath))
	for _, sw := range campaign.MergeSweeps(res.Cells, res.Results) {
		fmt.Fprintf(out, "\n-- %s --\n", sw.Name)
		fmt.Fprint(out, sw.Render())
	}
	if res.Finalized {
		fmt.Fprintf(out, "\ncampaign complete: %d cells finalized in %s\n", len(res.Cells), outPath)
	} else {
		fmt.Fprintf(out, "\ncampaign checkpointed: %d/%d cells complete; rerun the same command to resume\n",
			len(res.Results), len(res.Cells))
	}
}
