package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"sync"

	"satin"
	"satin/internal/campaign"
	"satin/internal/obs"
	"satin/internal/serve"
	"satin/internal/telemetry"
	"satin/internal/trace"
)

// runCampaignFile executes (or resumes) the campaign spec at path against
// its result file: expand the cell grid, run the not-yet-checkpointed cells
// on the worker pool, and render the merged per-combination sweeps. With
// maxCells > 0 the run stops early after that many new cells — the
// deterministic stand-in for a kill, used by `make campaign-smoke` to
// exercise resume.
func runCampaignFile(out, errOut io.Writer, path, outPath string, workers, maxCells int, progress, fork bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading campaign: %w", err)
	}
	c, err := campaign.Parse(data)
	if err != nil {
		return fmt.Errorf("campaign %s: %w", path, err)
	}
	if outPath == "" {
		outPath = campaign.DefaultResultPath(path)
	}

	opt := campaign.RunOptions{
		Workers:   workers,
		MaxCells:  maxCells,
		SpecTrial: satin.RunSpecTrial,
	}
	if fork {
		// Shared-prefix forking: cells that differ only in their (post-
		// barrier) fault plan run the common prefix once from a checkpoint.
		// Result bytes are identical with or without it.
		opt.GroupKey = satin.CheckpointGroupKey
		opt.GroupTrial = satin.RunCheckpointGroup
	}
	var timingMu sync.Mutex
	var cellTimes []telemetry.CellTiming
	if progress {
		// Progress rides the same obs bus the simulators publish on: the
		// executor emits one KindCell event per completion and this sink
		// renders it — so any other subscriber (a TUI, a log shipper) sees
		// the identical stream.
		bus := obs.NewBus()
		bus.Subscribe(func(e trace.Event) {
			if e.Kind == trace.KindCell {
				fmt.Fprintf(errOut, "campaign: cell %d %s\n", e.Area, e.Detail)
			}
		})
		opt.Bus = bus
		opt.Progress = func(done, total, index int, elapsed time.Duration, trialErr error) {
			fmt.Fprintf(errOut, "campaign: %d/%d in %v%s\n",
				done, total, elapsed.Truncate(time.Millisecond), rateETA(done, total, elapsed))
		}
		// Wall-clock per-cell timings feed the post-run straggler report
		// (Shard -1: a local run has no shards).
		opt.CellDone = func(index int, wall time.Duration, forked bool) {
			timingMu.Lock()
			cellTimes = append(cellTimes, telemetry.CellTiming{
				Index: index, Shard: -1,
				Ms: float64(wall) / float64(time.Millisecond),
			})
			timingMu.Unlock()
		}
	}

	res, err := campaign.Run(context.Background(), c, outPath, opt)
	if err != nil {
		return err
	}
	if progress {
		telemetry.BuildStragglerReport(cellTimes, nil, 5).Render(errOut, "campaign: ")
	}
	renderCampaign(out, c, res, outPath)
	return nil
}

// rateETA renders the throughput suffix for a progress line: completed
// cells per second and the ETA it implies for the remainder. Early samples
// (zero elapsed, zero done) render nothing rather than dividing by zero —
// wall-clock diagnostics, like the rest of progress.
func rateETA(done, total int, elapsed time.Duration) string {
	if done <= 0 || elapsed <= 0 {
		return ""
	}
	rate := float64(done) / elapsed.Seconds()
	if done >= total {
		return fmt.Sprintf(" (%.1f cells/s)", rate)
	}
	eta := time.Duration(float64(total-done) / rate * float64(time.Second))
	return fmt.Sprintf(" (%.1f cells/s, ETA %v)", rate, eta.Truncate(time.Millisecond))
}

// runCampaignServe is the sharded-execution client path: submit the
// campaign spec to a satin-serve coordinator, stream per-cell progress
// while external workers drain the shards, download the merged result —
// byte-identical to what runCampaignFile would have produced locally — and
// render the same tables from it.
func runCampaignServe(out, errOut io.Writer, path, outPath, serverURL string, shards int, progress bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading campaign: %w", err)
	}
	c, err := campaign.Parse(data)
	if err != nil {
		return fmt.Errorf("campaign %s: %w", path, err)
	}
	if outPath == "" {
		outPath = campaign.DefaultResultPath(path)
	}
	client := &serve.Client{BaseURL: serverURL}
	ctx := context.Background()
	st, err := client.Submit(ctx, data, shards)
	if err != nil {
		return err
	}
	fmt.Fprintf(errOut, "campaign: job %s (%d cells over %d shards) at %s\n",
		st.ID, st.Cells, len(st.Shards), serverURL)

	// The event stream doubles as the wait: it ends when the job finishes.
	start := time.Now()
	done := 0
	err = client.StreamEvents(ctx, st.ID, 0, func(e trace.Event) error {
		if e.Kind != trace.KindCell {
			return nil
		}
		done++
		if progress {
			elapsed := time.Since(start)
			fmt.Fprintf(errOut, "campaign: cell %d %s\n", e.Area, e.Detail)
			fmt.Fprintf(errOut, "campaign: %d/%d in %v%s\n",
				done, st.Cells, elapsed.Truncate(time.Millisecond), rateETA(done, st.Cells, elapsed))
		}
		return nil
	})
	if err != nil {
		return err
	}
	final, err := client.Status(ctx, st.ID)
	if err != nil {
		return err
	}
	if final.MergeError != "" {
		return fmt.Errorf("job %s merge failed: %s", final.ID, final.MergeError)
	}
	if progress {
		// The coordinator's wall-clock record: re-leases, idle time, and the
		// slowest cells/shard of the finished job.
		final.Stragglers.Render(errOut, "campaign: ")
	}
	merged, err := client.Result(ctx, final.ID)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, merged, 0o644); err != nil {
		return fmt.Errorf("writing merged result: %w", err)
	}

	specBytes, results, finalized, err := campaign.ReadResults(outPath)
	if err != nil {
		return fmt.Errorf("merged result: %w", err)
	}
	canon, err := campaign.Parse(specBytes)
	if err != nil {
		return fmt.Errorf("merged result campaign: %w", err)
	}
	cells, err := campaign.Cells(canon)
	if err != nil {
		return err
	}
	renderCampaign(out, c, campaign.RunResult{
		Cells: cells, Results: results, Finalized: finalized,
	}, outPath)
	return nil
}

// runCampaignWorker runs the sharded-execution worker loop against a
// satin-serve coordinator, with the exact trial wiring the local -campaign
// path uses, until the server reports no open work.
func runCampaignWorker(errOut io.Writer, serverURL string, workers int, fork bool) error {
	dir, err := os.MkdirTemp("", "benchtables-worker-*")
	if err != nil {
		return fmt.Errorf("worker scratch dir: %w", err)
	}
	defer os.RemoveAll(dir)
	logger, err := telemetry.NewLogger(errOut, telemetry.LogText)
	if err != nil {
		return err
	}
	opt := serve.WorkerOptions{
		Name:    fmt.Sprintf("benchtables-%d", os.Getpid()),
		Dir:     dir,
		Trial:   satin.RunSpecTrial,
		Workers: workers,
		Logger:  logger,
	}
	if fork {
		opt.GroupKey = satin.CheckpointGroupKey
		opt.GroupTrial = satin.RunCheckpointGroup
	}
	return serve.RunWorker(context.Background(), &serve.Client{BaseURL: serverURL}, opt)
}

// renderCampaign prints the campaign summary and the per-combination sweep
// tables for every checkpointed cell.
func renderCampaign(out io.Writer, c campaign.Spec, res campaign.RunResult, outPath string) {
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	section(out, fmt.Sprintf("Campaign %s — %d/%d cells (%s)", name, len(res.Results), len(res.Cells), outPath))
	for _, sw := range campaign.MergeSweeps(res.Cells, res.Results) {
		fmt.Fprintf(out, "\n-- %s --\n", sw.Name)
		fmt.Fprint(out, sw.Render())
	}
	if res.Finalized {
		fmt.Fprintf(out, "\ncampaign complete: %d cells finalized in %s\n", len(res.Cells), outPath)
	} else {
		fmt.Fprintf(out, "\ncampaign checkpointed: %d/%d cells complete; rerun the same command to resume\n",
			len(res.Results), len(res.Cells))
	}
}
