// Command satin-serve is the cross-process campaign coordinator: a
// long-lived HTTP/JSON server that shards submitted campaign specs, leases
// the shards to pull-based workers with expiry-based reassignment, streams
// per-cell progress, and merges the uploaded per-shard result files into a
// finalized file byte-identical to a single-process run (see EXPERIMENTS.md
// "Sharded campaigns").
//
// One binary, several modes:
//
//	satin-serve -listen 127.0.0.1:8373 -data serve.data     # server
//	satin-serve -url URL -submit grid.json -shards 4        # submit a campaign
//	satin-serve -url URL -worker                            # pull/execute/upload loop
//	satin-serve -url URL -watch c1                          # stream job progress
//	satin-serve -url URL -result c1 -out merged.result      # download merged result
//	satin-serve -url URL -status [-json]                    # job statuses (+stragglers)
//	satin-serve -url URL -timeline c1 -timeline-out t.json  # wall-clock Chrome trace
//	satin-serve -url URL -metrics                           # health probe + /metrics text
//	satin-serve -merge -out merged.result shard-*.result    # offline merge, no server
//
// The server additionally exposes GET /metrics (Prometheus text), /healthz,
// /readyz, and per-job GET /v1/campaigns/{id}/timeline; -log-format selects
// text or json structured logs for the server and worker modes.
//
// Workers execute their shard through the same campaign engine as
// `benchtables -campaign` — checkpoint-fork acceleration included, since
// the shard planner never splits a checkpoint-key group — so a campaign's
// finalized bytes are invariant to how many processes computed it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"satin"
	"satin/internal/campaign"
	"satin/internal/serve"
	"satin/internal/telemetry"
	"satin/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "satin-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("satin-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:8373", "serve mode: address to listen on")
	dataDir := fs.String("data", "satin-serve.data", "serve mode: directory for shard uploads and merged results")
	leaseTTL := fs.Duration("lease-ttl", serve.DefaultLeaseTTL, "serve mode: shard lease expiry (renewed by every progress report)")
	urlFlag := fs.String("url", "", "client modes: server base URL, e.g. http://127.0.0.1:8373")
	submit := fs.String("submit", "", "submit this campaign spec file to -url and print the job status")
	shards := fs.Int("shards", 1, "submit mode: number of shards to partition the campaign into")
	worker := fs.Bool("worker", false, "run the pull worker loop against -url until no work remains")
	name := fs.String("name", "", "worker mode: worker name (default w<pid>)")
	dir := fs.String("dir", "", "worker mode: scratch directory for per-shard result files (default a temp dir)")
	pool := fs.Int("pool", 0, "worker mode: in-process worker goroutines per shard (0 = GOMAXPROCS)")
	fork := fs.Bool("fork", true, "worker mode: fork shared-prefix cell groups from one checkpoint (identical results either way)")
	watch := fs.String("watch", "", "stream this job's per-cell progress from -url until it finishes")
	status := fs.Bool("status", false, "print every job's status from -url")
	result := fs.String("result", "", "download this job's finalized merged result from -url into -out")
	outFile := fs.String("out", "", "result/merge modes: output file path")
	merge := fs.Bool("merge", false, "offline: merge the positional shard result files into -out (no server involved)")
	logFormat := fs.String("log-format", "text", "serve/worker modes: structured log format, text or json")
	statusJSON := fs.Bool("json", false, "status mode: emit the job statuses as JSON instead of text")
	timeline := fs.String("timeline", "", "download this job's wall-clock Chrome trace from -url")
	timelineOut := fs.String("timeline-out", "", "timeline mode: write the trace to this file (default stdout)")
	metrics := fs.Bool("metrics", false, "probe /healthz and /readyz on -url, then print the /metrics exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(errOut, *logFormat)
	if err != nil {
		return err
	}

	client := &serve.Client{BaseURL: *urlFlag}
	needURL := func(mode string) error {
		if *urlFlag == "" {
			return fmt.Errorf("%s needs -url", mode)
		}
		return nil
	}
	switch {
	case *merge:
		if *outFile == "" {
			return fmt.Errorf("-merge needs -out FILE")
		}
		if fs.NArg() == 0 {
			return fmt.Errorf("-merge needs shard result files as arguments")
		}
		n, err := campaign.Merge(*outFile, fs.Args()...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %d cells from %d shard file(s) into %s\n", n, fs.NArg(), *outFile)
		return nil

	case *submit != "":
		if err := needURL("-submit"); err != nil {
			return err
		}
		data, err := os.ReadFile(*submit)
		if err != nil {
			return fmt.Errorf("reading campaign: %w", err)
		}
		st, err := client.Submit(context.Background(), data, *shards)
		if err != nil {
			return err
		}
		printStatus(out, st)
		return nil

	case *worker:
		if err := needURL("-worker"); err != nil {
			return err
		}
		if *name == "" {
			*name = fmt.Sprintf("w%d", os.Getpid())
		}
		if *dir == "" {
			tmp, err := os.MkdirTemp("", "satin-worker-*")
			if err != nil {
				return fmt.Errorf("worker scratch dir: %w", err)
			}
			defer os.RemoveAll(tmp)
			*dir = tmp
		}
		opt := serve.WorkerOptions{
			Name:    *name,
			Dir:     *dir,
			Trial:   satin.RunSpecTrial,
			Workers: *pool,
			Logger:  logger,
		}
		if *fork {
			opt.GroupKey = satin.CheckpointGroupKey
			opt.GroupTrial = satin.RunCheckpointGroup
		}
		return serve.RunWorker(context.Background(), client, opt)

	case *watch != "":
		if err := needURL("-watch"); err != nil {
			return err
		}
		return watchJob(context.Background(), client, *watch, out)

	case *status:
		if err := needURL("-status"); err != nil {
			return err
		}
		jobs, err := client.List(context.Background())
		if err != nil {
			return err
		}
		if *statusJSON {
			// The wire JobStatus, verbatim: scripts parse this, so it must
			// round-trip through serve.JobStatus without loss.
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(jobs)
		}
		if len(jobs) == 0 {
			fmt.Fprintln(out, "no campaigns")
			return nil
		}
		for _, st := range jobs {
			printStatus(out, st)
		}
		return nil

	case *timeline != "":
		if err := needURL("-timeline"); err != nil {
			return err
		}
		data, err := client.Timeline(context.Background(), *timeline)
		if err != nil {
			return err
		}
		if *timelineOut == "" {
			_, err = out.Write(data)
			return err
		}
		if err := os.WriteFile(*timelineOut, data, 0o644); err != nil {
			return fmt.Errorf("writing timeline: %w", err)
		}
		fmt.Fprintf(out, "job %s: %d timeline bytes written to %s\n", *timeline, len(data), *timelineOut)
		return nil

	case *metrics:
		if err := needURL("-metrics"); err != nil {
			return err
		}
		if err := client.Healthz(context.Background()); err != nil {
			return err
		}
		data, err := client.MetricsText(context.Background())
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err

	case *result != "":
		if err := needURL("-result"); err != nil {
			return err
		}
		if *outFile == "" {
			return fmt.Errorf("-result needs -out FILE")
		}
		data, err := client.Result(context.Background(), *result)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return fmt.Errorf("writing result: %w", err)
		}
		fmt.Fprintf(out, "job %s: %d result bytes written to %s\n", *result, len(data), *outFile)
		return nil

	default:
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("listening: %w", err)
		}
		return serveMode(l, *dataDir, *leaseTTL, errOut, logger)
	}
}

// serveMode runs the coordinator on an existing listener (split from run so
// tests can own the listener and close it to stop the server).
func serveMode(l net.Listener, dataDir string, leaseTTL time.Duration, errOut io.Writer, logger *slog.Logger) error {
	s, err := serve.New(serve.Options{
		DataDir:  dataDir,
		LeaseTTL: leaseTTL,
		GroupKey: satin.CheckpointGroupKey,
		Logger:   logger,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(errOut, "satin-serve: listening on %s (data in %s)\n", l.Addr(), dataDir)
	// A closed listener is the clean-shutdown path (tests close it to stop
	// the server), not a failure.
	if err := http.Serve(l, s.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// watchJob streams the job's per-cell progress and prints the final
// verdict. The stream is the same trace.KindCell events an in-process
// campaign publishes on its bus.
func watchJob(ctx context.Context, client *serve.Client, jobID string, out io.Writer) error {
	err := client.StreamEvents(ctx, jobID, 0, func(e trace.Event) error {
		if e.Kind == trace.KindCell {
			fmt.Fprintf(out, "cell %d %s\n", e.Area, e.Detail)
		}
		return nil
	})
	if err != nil {
		return err
	}
	st, err := client.Status(ctx, jobID)
	if err != nil {
		return err
	}
	if st.MergeError != "" {
		return fmt.Errorf("job %s merge failed: %s", st.ID, st.MergeError)
	}
	fmt.Fprintf(out, "job %s finalized: %d/%d cells\n", st.ID, st.Done, st.Cells)
	return nil
}

// printStatus renders one job's status block.
func printStatus(out io.Writer, st serve.JobStatus) {
	name := st.Name
	if name == "" {
		name = "campaign"
	}
	state := "running"
	if st.Finalized {
		state = "finalized"
	} else if st.MergeError != "" {
		state = "merge failed: " + st.MergeError
	}
	fmt.Fprintf(out, "job %s (%s): %d/%d cells, %d shard(s), %s\n",
		st.ID, name, st.Done, st.Cells, len(st.Shards), state)
	for _, sh := range st.Shards {
		line := fmt.Sprintf("  shard %d: %d cells, %s", sh.Shard, sh.Cells, sh.State)
		if sh.Worker != "" && sh.State != serve.StatePending {
			line += " (worker " + sh.Worker + ")"
		}
		fmt.Fprintln(out, line)
	}
	st.Stragglers.Render(out, "  ")
}
