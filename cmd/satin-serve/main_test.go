package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"satin"
	"satin/internal/campaign"
	"satin/internal/profile"
	"satin/internal/serve"
	"satin/internal/telemetry"
)

// smokeCampaign mirrors testdata/campaigns/smoke.json closely enough for a
// CLI round trip while staying fast: 2 fault plans × 2 seeds = 4 cells.
const smokeCampaign = `{
  "version": 1,
  "name": "cli-smoke",
  "scenario": {
    "version": 1,
    "seed": 1,
    "defense": {"kind": "satin", "satin": {"tgoal": "2s", "max_rounds": 2}},
    "evader": {"kind": "fast"},
    "run": {"to_completion": true}
  },
  "faults": ["", "scale:2"],
  "seeds": {"base": 1, "count": 2}
}`

// startServer runs serve mode on an OS-assigned port and returns its base
// URL plus a stop function (closing the listener ends http.Serve cleanly).
func startServer(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- serveMode(l, t.TempDir(), 30*time.Second, new(bytes.Buffer), telemetry.NopLogger())
	}()
	return "http://" + l.Addr().String(), func() {
		l.Close()
		if err := <-done; err != nil {
			t.Errorf("serveMode: %v", err)
		}
	}
}

// TestCLIRoundTrip drives the full sharded lifecycle through the CLI
// surface: submit, two worker passes, status, watch, result download —
// and requires the downloaded merge to be byte-identical to an in-process
// single-run of the same campaign.
func TestCLIRoundTrip(t *testing.T) {
	url, stop := startServer(t)
	defer stop()

	dir := t.TempDir()
	campaignPath := filepath.Join(dir, "smoke.json")
	if err := os.WriteFile(campaignPath, []byte(smokeCampaign), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-url", url, "-submit", campaignPath, "-shards", "2"}, &out, &out); err != nil {
		t.Fatalf("submit: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "job c1 (cli-smoke): 0/4 cells, 2 shard(s), running") {
		t.Fatalf("submit output:\n%s", out.String())
	}

	// Two sequential worker invocations: the first drains both shards (it
	// loops until no work remains), the second must exit immediately.
	for i := 0; i < 2; i++ {
		var wout bytes.Buffer
		if err := run([]string{"-url", url, "-worker", "-name", "w", "-dir", t.TempDir()}, &wout, &wout); err != nil {
			t.Fatalf("worker pass %d: %v\n%s", i, err, wout.String())
		}
	}

	out.Reset()
	if err := run([]string{"-url", url, "-status"}, &out, &out); err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(out.String(), "4/4 cells, 2 shard(s), finalized") {
		t.Fatalf("status output:\n%s", out.String())
	}
	// The finished job has a wall-clock record, so the straggler summary
	// rides on the same status block.
	if !strings.Contains(out.String(), "stragglers:") {
		t.Fatalf("status output missing straggler summary:\n%s", out.String())
	}

	// -status -json must emit the wire JobStatus verbatim: a script that
	// decodes it into serve.JobStatus sees the same fields the API returns.
	out.Reset()
	if err := run([]string{"-url", url, "-status", "-json"}, &out, &out); err != nil {
		t.Fatalf("status -json: %v", err)
	}
	var jobs []serve.JobStatus
	if err := json.Unmarshal(out.Bytes(), &jobs); err != nil {
		t.Fatalf("status -json output is not JobStatus JSON: %v\n%s", err, out.String())
	}
	if len(jobs) != 1 || jobs[0].ID != "c1" || jobs[0].Done != 4 || !jobs[0].Finalized ||
		len(jobs[0].Shards) != 2 || jobs[0].Stragglers == nil {
		t.Fatalf("status -json round trip = %+v", jobs)
	}

	// The wall-clock timeline must pass the same structural lint as the
	// virtual-time Chrome traces (-lint-chrome machinery).
	tracePath := filepath.Join(dir, "timeline.json")
	out.Reset()
	if err := run([]string{"-url", url, "-timeline", "c1", "-timeline-out", tracePath}, &out, &out); err != nil {
		t.Fatalf("timeline: %v\n%s", err, out.String())
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := profile.ValidateChromeTrace(bytes.NewReader(traceData))
	if err != nil {
		t.Fatalf("timeline fails chrome lint: %v\n%s", err, traceData)
	}
	// 1 job span + 2 lease spans + 4 cell spans + 1 merge + metadata.
	if n < 8 {
		t.Fatalf("timeline has %d events, want >= 8", n)
	}

	// -metrics probes health and prints the exposition.
	out.Reset()
	if err := run([]string{"-url", url, "-metrics"}, &out, &out); err != nil {
		t.Fatalf("metrics: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"satin_leases_granted_total",
		"satin_uploads_verified_total",
		`satin_merges_total{outcome="ok"} 1`,
		`satin_job_cells_done{job="c1"} 4`,
		"satin_http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-url", url, "-watch", "c1"}, &out, &out); err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	watch := out.String()
	if strings.Count(watch, "cell ") != 4 || !strings.Contains(watch, "job c1 finalized: 4/4 cells") {
		t.Fatalf("watch output:\n%s", watch)
	}

	mergedPath := filepath.Join(dir, "merged.result")
	out.Reset()
	if err := run([]string{"-url", url, "-result", "c1", "-out", mergedPath}, &out, &out); err != nil {
		t.Fatalf("result: %v", err)
	}

	c, err := campaign.Parse([]byte(smokeCampaign))
	if err != nil {
		t.Fatal(err)
	}
	singlePath := filepath.Join(dir, "single.result")
	if _, err := campaign.Run(context.Background(), c, singlePath, campaign.RunOptions{
		SpecTrial: satin.RunSpecTrial,
	}); err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, single) {
		t.Fatal("CLI sharded result differs from single-process bytes")
	}
}

// TestCLIOfflineMerge: -merge combines shard files without a server.
func TestCLIOfflineMerge(t *testing.T) {
	c, err := campaign.Parse([]byte(smokeCampaign))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	shardA := filepath.Join(dir, "a.result")
	shardB := filepath.Join(dir, "b.result")
	single := filepath.Join(dir, "single.result")
	for _, s := range []struct {
		path string
		only []int
	}{
		{shardA, []int{0, 1}},
		{shardB, []int{2, 3}},
		{single, nil},
	} {
		if _, err := campaign.Run(context.Background(), c, s.path, campaign.RunOptions{
			SpecTrial: satin.RunSpecTrial, Only: s.only,
		}); err != nil {
			t.Fatalf("run %s: %v", s.path, err)
		}
	}

	merged := filepath.Join(dir, "merged.result")
	var out bytes.Buffer
	if err := run([]string{"-merge", "-out", merged, shardA, shardB}, &out, &out); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !strings.Contains(out.String(), "merged 4 cells from 2 shard file(s)") {
		t.Fatalf("merge output:\n%s", out.String())
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("offline merge differs from single-process bytes")
	}
}

// TestCLIModeValidation: client modes without -url, and incomplete merge
// invocations, fail with usable errors instead of panicking.
func TestCLIModeValidation(t *testing.T) {
	cases := [][]string{
		{"-submit", "x.json"},
		{"-worker"},
		{"-watch", "c1"},
		{"-status"},
		{"-result", "c1", "-out", "x"},
		{"-merge"},
		{"-merge", "-out", "x"},
		{"-timeline", "c1"},
		{"-metrics"},
		{"-log-format", "yaml", "-status", "-url", "http://x"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out, &out); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
