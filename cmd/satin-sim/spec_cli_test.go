package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"satin"
)

// TestSpecReproducesGolden: running the committed clean spec through the
// CLI reproduces the flag path's golden trace byte for byte.
func TestSpecReproducesGolden(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	args := []string{"-spec", filepath.Join("..", "..", "testdata", "specs", "clean.json"), "-trace-out", trace}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "trace_seed1.jsonl.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("spec-driven trace drifted from golden (%d bytes vs %d)", len(got), len(want))
	}
}

// TestDumpSpecRoundTrips: -dump-spec output for a flag invocation parses
// and canonicalizes back to itself, so flags are now just spec synthesis.
func TestDumpSpecRoundTrips(t *testing.T) {
	for _, args := range [][]string{
		{"-scans", "1", "-tp", "1s"},
		{"-defense", "baseline", "-rounds", "3", "-tp", "1s", "-evader", "thread", "-threshold", "2ms"},
		{"-seed", "9", "-faults", "jitter:0.05;irq:p=0.05,delay=100us", "-guard", "on", "-routing", "preemptive"},
		{"-defense", "none", "-evader", "fast", "-flood", "1000"},
	} {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var out strings.Builder
			if err := run(append(args, "-dump-spec"), &out); err != nil {
				t.Fatal(err)
			}
			dumped := []byte(out.String())
			s, err := satin.ParseSpec(dumped)
			if err != nil {
				t.Fatalf("dumped spec does not parse: %v\n%s", err, dumped)
			}
			c, err := satin.CanonicalizeSpec(s)
			if err != nil {
				t.Fatalf("dumped spec does not canonicalize: %v\n%s", err, dumped)
			}
			if !reflect.DeepEqual(s, c) {
				t.Errorf("dumped spec is not canonical:\ndumped:    %+v\ncanonical: %+v", s, c)
			}
			again, err := satin.MarshalSpec(c)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dumped, again) {
				t.Errorf("-dump-spec output is not a Marshal fixed point:\n%s\nvs\n%s", dumped, again)
			}
		})
	}
}

// TestSpecRejectsScenarioFlags: scenario-shaping flags cannot be combined
// with -spec (the spec file is the single source of truth).
func TestSpecRejectsScenarioFlags(t *testing.T) {
	specFile := filepath.Join("..", "..", "testdata", "specs", "clean.json")
	for _, extra := range [][]string{
		{"-seed", "2"},
		{"-defense", "baseline"},
		{"-tp", "1s"},
		{"-faults", "jitter:0.1"},
	} {
		var out strings.Builder
		err := run(append([]string{"-spec", specFile}, extra...), &out)
		if err == nil || !strings.Contains(err.Error(), "cannot be combined with -spec") {
			t.Errorf("%v with -spec: err = %v, want combination rejection", extra, err)
		}
	}
}

// TestSpecAllowsExportFlags: export destinations are not scenario shape, so
// they may be layered over a spec from the command line.
func TestSpecAllowsExportFlags(t *testing.T) {
	tl := filepath.Join(t.TempDir(), "tl.txt")
	var out strings.Builder
	args := []string{"-spec", filepath.Join("..", "..", "testdata", "specs", "clean.json"), "-timeline", tl}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(tl); err != nil || len(data) == 0 {
		t.Errorf("timeline export over spec failed (err %v, %d bytes)", err, len(data))
	}
}

// TestSpecBadFile: unreadable and invalid spec files produce file-scoped
// errors rather than partial runs.
func TestSpecBadFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "defense": {"kind": "warp"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-spec", bad}, &out)
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("invalid spec error %v should name the file", err)
	}
}
