// Command satin-sim runs a full attack-vs-defense scenario on the simulated
// Juno r1 board and prints a timeline summary: SATIN (or the baseline)
// introspecting the rich OS while TZ-Evader probes, hides, and reinstalls.
//
// Usage:
//
//	satin-sim                                   # SATIN vs fast TZ-Evader, 10 full scans
//	satin-sim -defense baseline -rounds 5       # baseline checker instead
//	satin-sim -evader thread                    # full thread-level evader
//	satin-sim -evader none                      # clean system
//	satin-sim -tp 4s -scans 3 -seed 9 -v        # tweak schedule; -v prints per-round lines
//	satin-sim -trace-out run.jsonl              # stream every event live (.csv for CSV)
//	satin-sim -metrics-out metrics.csv          # end-of-run metrics snapshot
//	satin-sim -lint-trace run.jsonl             # validate a streamed JSONL trace
//	satin-sim -faults "scale:2"                 # fault-injected run (grammar in EXPERIMENTS.md)
//	satin-sim -faults "hotplug:core=1,off=30s,on=200s;jitter:0.1"
//	satin-sim -chrome-trace spans.json          # causal span profile for Perfetto / chrome://tracing
//	satin-sim -profile-out profile.txt          # per-core virtual-time attribution table
//	satin-sim -diff a.jsonl b.jsonl             # align two trace exports, report divergence
//	satin-sim -lint-chrome spans.json           # validate a Chrome trace_event JSON file
//	satin-sim -spec scenario.json               # run a declarative scenario spec file
//	satin-sim -scans 1 -dump-spec               # print the flags' effective spec, don't run
//
// A spec file is the whole scenario (seed, defense, evader, faults, run
// horizon — see EXPERIMENTS.md "Spec files"), so scenario-shaping flags
// cannot be combined with -spec; export flags (-trace-out, -timeline, ...)
// can. Every flag invocation is internally synthesized into the same spec
// form — -dump-spec prints it, and running the printed file reproduces the
// flag run byte for byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"satin"
	"satin/internal/campaign"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "satin-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("satin-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	specPath := fs.String("spec", "", `run the scenario described by this JSON spec file (see EXPERIMENTS.md "Spec files")`)
	dumpSpec := fs.Bool("dump-spec", false, "print the effective canonical scenario spec as JSON and exit without running")
	dumpCampaign := fs.Bool("dump-campaign", false, "print a one-cell campaign spec wrapping the effective scenario and exit without running (a grid/seed-range starting point for benchtables -campaign)")
	seed := fs.Uint64("seed", 1, "root seed")
	defense := fs.String("defense", "satin", "defense: satin | baseline | none")
	evader := fs.String("evader", "fast", "attacker: fast | thread | none")
	tp := fs.Duration("tp", 8*time.Second, "average period between introspection rounds")
	scans := fs.Int("scans", 10, "full kernel scans to run (SATIN)")
	rounds := fs.Int("rounds", 10, "rounds to run (baseline)")
	threshold := fs.Duration("threshold", satin.DefaultThreshold, "evader probing threshold")
	verbose := fs.Bool("v", false, "print each round")
	timeline := fs.String("timeline", "", "write the merged event timeline to this file (.json for JSON, else text)")
	traceOut := fs.String("trace-out", "", "stream events live to this file as they happen (.csv for CSV, else JSONL)")
	metricsOut := fs.String("metrics-out", "", "write the end-of-run metrics snapshot to this file (.csv for CSV, else text)")
	lintTrace := fs.String("lint-trace", "", "validate a streamed JSONL trace file and exit")
	chromeTrace := fs.String("chrome-trace", "", "write a Chrome/Perfetto trace_event JSON span profile to this file (attaches the profiler)")
	profileOut := fs.String("profile-out", "", "write the per-core virtual-time attribution table to this file (attaches the profiler)")
	diff := fs.String("diff", "", "diff this JSONL trace against the trace given as positional argument, then exit")
	diffBudget := fs.Duration("diff-budget", 0, "largest per-span timing divergence -diff tolerates (0 = exact)")
	lintChrome := fs.String("lint-chrome", "", "validate a Chrome trace_event JSON file and exit")
	routing := fs.String("routing", "nonpreemptive", "NS interrupt routing: nonpreemptive | preemptive")
	flood := fs.Float64("flood", 0, "SGI flood rate per core (interrupts/s); 0 disables")
	guard := fs.String("guard", "off", "synchronous guard: off | on | bypassed")
	faults := fs.String("faults", "", `fault-injection plan, e.g. "scale:2" or "dvfs:at=10s,factor=0.5;irq:p=0.1,delay=100us" (empty = none)`)
	checkpointOut := fs.String("checkpoint-out", "", "run the (fault-free) scenario to its horizon, snapshot it there, and write the checkpoint to this file (see docs/CHECKPOINT.md)")
	resumeFrom := fs.String("resume-from", "", "restore this checkpoint file into the scenario and run only the remaining horizon")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *lintTrace != "" {
		events, err := lintTraceFile(*lintTrace)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trace ok: %d events in %s\n", events, *lintTrace)
		return nil
	}
	if *lintChrome != "" {
		f, err := os.Open(*lintChrome)
		if err != nil {
			return fmt.Errorf("opening chrome trace: %w", err)
		}
		defer f.Close()
		n, err := satin.ValidateChromeTrace(f)
		if err != nil {
			return fmt.Errorf("chrome trace %s: %w", *lintChrome, err)
		}
		fmt.Fprintf(out, "chrome trace ok: %d events in %s\n", n, *lintChrome)
		return nil
	}
	if *diff != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-diff needs exactly one positional trace file to compare against, got %d", fs.NArg())
		}
		return diffTraceFiles(out, *diff, fs.Arg(0), *diffBudget)
	}

	// The flags are a synthesis layer: both modes produce a scenario spec,
	// and everything downstream (build, drive, exports) runs off the spec.
	var s satin.ScenarioSpec
	if *specPath != "" {
		if set := scenarioFlagsSet(fs); len(set) > 0 {
			return fmt.Errorf("-%s cannot be combined with -spec (the spec file describes the scenario; use -dump-spec to inspect it)", set[0])
		}
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return fmt.Errorf("reading spec: %w", err)
		}
		if s, err = satin.ParseSpec(data); err != nil {
			return fmt.Errorf("spec %s: %w", *specPath, err)
		}
	} else {
		var err error
		if s, err = specFromFlags(*seed, *defense, *evader, *tp, *scans, *rounds, *threshold, *routing, *guard, *faults, *flood); err != nil {
			return err
		}
	}
	// Export flags compose with either mode, overriding the spec's own
	// export section entry by entry.
	applyExportFlags(&s, *timeline, *traceOut, *metricsOut, *chromeTrace, *profileOut)
	s, err := satin.CanonicalizeSpec(s)
	if err != nil {
		if *specPath != "" {
			return fmt.Errorf("spec %s: %w", *specPath, err)
		}
		return err
	}
	if *dumpSpec {
		b, err := satin.MarshalSpec(s)
		if err != nil {
			return err
		}
		_, err = out.Write(b)
		return err
	}
	if *dumpCampaign {
		// Campaign cells write the shared result file, never per-run
		// artifacts, so the scenario's export section is stripped.
		scenario := s.Clone()
		scenario.Export = nil
		canon, err := campaign.Canonicalize(campaign.Spec{
			Version:  campaign.CurrentVersion,
			Name:     scenario.Name,
			Scenario: &scenario,
			Seeds:    campaign.SeedRange{Base: scenario.Seed, Count: 1},
		})
		if err != nil {
			return err
		}
		b, err := campaign.Marshal(canon)
		if err != nil {
			return err
		}
		_, err = out.Write(b)
		return err
	}
	var exp satin.SpecExport
	if s.Export != nil {
		exp = *s.Export
	}

	if *checkpointOut != "" && *resumeFrom != "" {
		return fmt.Errorf("-checkpoint-out and -resume-from cannot be combined")
	}
	if *checkpointOut != "" && (s.Run.ToCompletion || s.Run.For <= 0) {
		return fmt.Errorf("-checkpoint-out snapshots at the run horizon; the scenario needs a fixed run.for duration")
	}
	var snap *satin.Snapshot
	if *resumeFrom != "" {
		snap, err = satin.ReadCheckpoint(*resumeFrom)
		if err != nil {
			return err
		}
		if _, err := satin.ValidateResume(snap, s); err != nil {
			return fmt.Errorf("checkpoint %s: %w", *resumeFrom, err)
		}
	}

	sc, err := satin.FromSpec(s)
	if err != nil {
		return err
	}
	var sink *satin.StreamSink
	if exp.Trace != "" {
		format := satin.ExportJSONL
		if strings.HasSuffix(exp.Trace, ".csv") {
			format = satin.ExportCSV
		}
		f, err := os.Create(exp.Trace)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer f.Close()
		sink, err = satin.NewStreamSink(f, format)
		if err != nil {
			return err
		}
		// Subscribe before driving the scenario: the sink sees each event
		// the instant it is published.
		sc.Bus().Subscribe(sink.OnEvent)
	}
	if s := sc.SATIN(); s != nil && *verbose {
		s.OnRound(func(r satin.Round) {
			verdict := "clean"
			if !r.Clean {
				verdict = "ALARM"
			}
			fmt.Fprintf(out, "[%12v] round %3d: core %d area %2d %8v %s\n",
				r.Started.Duration().Truncate(time.Millisecond), r.Index, r.CoreID, r.Area,
				r.Elapsed().Truncate(time.Microsecond), verdict)
		})
	}
	switch {
	case snap != nil:
		// Restore after the sink subscription: the timeline replay publishes
		// the prefix's events, so a streamed trace is byte-identical to a
		// from-scratch run's.
		if err := sc.RestoreSnapshot(snap); err != nil {
			return fmt.Errorf("checkpoint %s: %w", *resumeFrom, err)
		}
		fmt.Fprintf(out, "resumed from %s at %v (%d dirty pages, %d claims)\n",
			*resumeFrom, snap.State.Now.Duration().Truncate(time.Millisecond), len(snap.Pages), len(snap.State.Claims))
		satin.RunRemaining(sc, s)
	case *checkpointOut != "":
		key, err := satin.CheckpointKey(s)
		if err != nil {
			return err
		}
		snapOut, err := sc.Checkpoint(time.Duration(s.Run.For), key)
		if err != nil {
			return err
		}
		if err := satin.WriteCheckpoint(*checkpointOut, snapOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint: snapshot at %v (%d dirty pages, %d claims) written to %s\n",
			snapOut.State.Now.Duration().Truncate(time.Millisecond), len(snapOut.Pages), len(snapOut.State.Claims), *checkpointOut)
	default:
		satin.DriveSpec(sc, s)
	}

	// The summary renders from the scenario's own end-of-run Report; only
	// per-alarm details and thread-evader staleness need the component
	// accessors.
	rep := sc.Report()
	fmt.Fprintf(out, "simulated %v of board time\n", rep.Elapsed.Truncate(time.Millisecond))
	if s := sc.SATIN(); s != nil {
		fmt.Fprintf(out, "SATIN: %d rounds, %d full scans, %d alarms\n",
			rep.SATINRounds, rep.FullScans, rep.Alarms)
		for _, a := range s.Alarms() {
			fmt.Fprintf(out, "  alarm: round %d flagged area %d at %v\n", a.Round, a.Area, a.At.Duration().Truncate(time.Millisecond))
		}
	}
	if sc.Baseline() != nil {
		fmt.Fprintf(out, "baseline: %d rounds, %d reported clean\n", rep.BaselineRounds, rep.BaselineClean)
	}
	if rk := sc.Rootkit(); rk != nil {
		fmt.Fprintf(out, "rootkit: state %v, %d state transitions\n", rep.RootkitState, len(rk.Transitions()))
	}
	if sc.FastEvader() != nil {
		fmt.Fprintf(out, "evader: %d suspect events\n", rep.Suspects)
	}
	if te := sc.ThreadEvader(); te != nil {
		fmt.Fprintf(out, "evader: %d suspect events, max staleness %v\n", rep.Suspects, te.MaxStaleness())
	}
	if inj := sc.Faults(); inj != nil {
		fmt.Fprintf(out, "faults: %d injected\n", inj.Injected())
		if s := sc.SATIN(); s != nil && s.ReroutedRounds() > 0 {
			fmt.Fprintf(out, "  %d rounds re-routed around offline cores\n", s.ReroutedRounds())
		}
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d events streamed to %s\n", sink.Events(), exp.Trace)
	}
	if p := sc.Profiler(); p != nil {
		if exp.ChromeTrace != "" {
			f, err := os.Create(exp.ChromeTrace)
			if err != nil {
				return fmt.Errorf("creating chrome trace file: %w", err)
			}
			defer f.Close()
			if err := p.WriteChromeTrace(f, rep.Elapsed); err != nil {
				return err
			}
			fmt.Fprintf(out, "chrome trace: %d spans written to %s\n", p.SpanCount(), exp.ChromeTrace)
		}
		if exp.Profile != "" {
			f, err := os.Create(exp.Profile)
			if err != nil {
				return fmt.Errorf("creating profile file: %w", err)
			}
			defer f.Close()
			if _, err := io.WriteString(f, p.Summary(rep.Elapsed).Render()); err != nil {
				return err
			}
			fmt.Fprintf(out, "profile: %d spans attributed to %s\n", p.SpanCount(), exp.Profile)
		}
	}
	if exp.Metrics != "" {
		f, err := os.Create(exp.Metrics)
		if err != nil {
			return fmt.Errorf("creating metrics file: %w", err)
		}
		defer f.Close()
		if strings.HasSuffix(exp.Metrics, ".csv") {
			err = rep.Metrics.WriteCSV(f)
		} else {
			_, err = io.WriteString(f, rep.Metrics.String())
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics: %d metrics written to %s\n", len(rep.Metrics.Rows), exp.Metrics)
	}
	if exp.Timeline != "" {
		f, err := os.Create(exp.Timeline)
		if err != nil {
			return fmt.Errorf("creating timeline file: %w", err)
		}
		defer f.Close()
		tl := sc.Timeline()
		if strings.HasSuffix(exp.Timeline, ".json") {
			err = tl.WriteJSON(f)
		} else {
			err = tl.WriteText(f)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "timeline: %d events written to %s\n", tl.Len(), exp.Timeline)
	}
	return nil
}

// scenarioFlagNames are the flags that describe the scenario itself — in
// -spec mode the file is the single source of truth, so setting any of them
// alongside -spec is an error. Export and output flags stay composable.
var scenarioFlagNames = map[string]bool{
	"seed": true, "defense": true, "evader": true, "tp": true, "scans": true,
	"rounds": true, "threshold": true, "routing": true, "flood": true,
	"guard": true, "faults": true,
}

// scenarioFlagsSet lists the scenario flags explicitly set on the command
// line, in visit order.
func scenarioFlagsSet(fs *flag.FlagSet) []string {
	var set []string
	fs.Visit(func(f *flag.Flag) {
		if scenarioFlagNames[f.Name] {
			set = append(set, f.Name)
		}
	})
	return set
}

// specFromFlags synthesizes a scenario spec from the classic flag surface —
// the same scenario those flags have always built, now expressed as the
// declarative artifact (`-dump-spec` prints it). The SATIN section follows
// the historical conventions: Tgoal = 19·tp, MaxRounds = scans·19, and the
// defense seed left at zero so it derives from the root seed (root+2).
func specFromFlags(seed uint64, defense, evader string, tp time.Duration, scans, rounds int, threshold time.Duration, routing, guard, faults string, flood float64) (satin.ScenarioSpec, error) {
	s := satin.ScenarioSpec{Version: satin.ScenarioSpecVersion, Seed: seed, Faults: faults}
	switch routing {
	case "nonpreemptive", "preemptive":
		s.Routing = routing
	default:
		return s, fmt.Errorf("unknown routing %q", routing)
	}
	switch guard {
	case "off", "on", "bypassed":
		s.Guard = guard
	default:
		return s, fmt.Errorf("unknown guard %q", guard)
	}
	if flood != 0 {
		s.Workload = &satin.SpecWorkload{FloodRate: flood}
	}
	switch evader {
	case "fast", "thread":
		s.Evader = satin.SpecEvader{Kind: evader, Threshold: satin.SpecDuration(threshold)}
	case "none":
		s.Evader = satin.SpecEvader{Kind: "none"}
	default:
		return s, fmt.Errorf("unknown evader %q", evader)
	}
	switch defense {
	case "satin":
		s.Defense = satin.SpecDefense{Kind: "satin", SATIN: &satin.SpecSATINConfig{
			Tgoal:     satin.SpecDuration(19 * tp),
			MaxRounds: scans * 19,
		}}
	case "baseline":
		s.Defense = satin.SpecDefense{Kind: "baseline", Baseline: &satin.SpecBaselineConfig{
			Period:          satin.SpecDuration(tp),
			RandomizePeriod: true,
			Selection:       "random",
			Technique:       "direct",
			MaxRounds:       rounds,
		}}
	case "none":
		s.Defense = satin.SpecDefense{Kind: "none"}
	default:
		return s, fmt.Errorf("unknown defense %q", defense)
	}
	switch {
	case defense == "none" && evader == "none":
		return s, fmt.Errorf("nothing to simulate: pick a defense or an evader")
	case defense == "none":
		// Attack-only runs have no natural end; watch for a minute.
		s.Run = satin.SpecRun{For: satin.SpecDuration(time.Minute)}
	case evader == "thread" || flood > 0:
		// Thread-level evaders and floods schedule events forever, so the
		// queue never drains; run a horizon generous enough for every
		// randomized round to land.
		n := scans * 19
		if defense == "baseline" {
			n = rounds
		}
		s.Run = satin.SpecRun{For: satin.SpecDuration(time.Duration(n+7) * 2 * tp)}
	default:
		s.Run = satin.SpecRun{ToCompletion: true}
	}
	return s, nil
}

// applyExportFlags merges the export flags over the spec's export section;
// a set flag wins over the spec entry for the same artifact.
func applyExportFlags(s *satin.ScenarioSpec, timeline, trace, metrics, chromeTrace, profile string) {
	if timeline == "" && trace == "" && metrics == "" && chromeTrace == "" && profile == "" {
		return
	}
	if s.Export == nil {
		s.Export = &satin.SpecExport{}
	}
	if timeline != "" {
		s.Export.Timeline = timeline
	}
	if trace != "" {
		s.Export.Trace = trace
	}
	if metrics != "" {
		s.Export.Metrics = metrics
	}
	if chromeTrace != "" {
		s.Export.ChromeTrace = chromeTrace
	}
	if profile != "" {
		s.Export.Profile = profile
	}
}

// lintTraceFile validates a streamed JSONL trace and reports the event
// count — the CI smoke check for the export path.
func lintTraceFile(path string) (int, error) {
	events, err := readTraceFile(path)
	if err != nil {
		return 0, err
	}
	if len(events) == 0 {
		return 0, fmt.Errorf("trace %s contains no events", path)
	}
	if err := satin.CheckTraceOrdered(events); err != nil {
		return 0, fmt.Errorf("trace %s: %w", path, err)
	}
	return len(events), nil
}

// readTraceFile loads a streamed JSONL trace export.
func readTraceFile(path string) ([]satin.TimelineEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	events, err := satin.ReadTraceJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", path, err)
	}
	return events, nil
}

// diffTraceFiles aligns two JSONL trace exports and prints the divergence
// report; a divergence beyond budget is an error (non-zero exit).
func diffTraceFiles(out io.Writer, pathA, pathB string, budget time.Duration) error {
	a, err := readTraceFile(pathA)
	if err != nil {
		return err
	}
	b, err := readTraceFile(pathB)
	if err != nil {
		return err
	}
	rep := satin.DiffTraces(a, b)
	fmt.Fprint(out, rep.Render(budget))
	if !rep.WithinBudget(budget) {
		return fmt.Errorf("traces %s and %s diverge beyond budget %v", pathA, pathB, budget)
	}
	return nil
}
