package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunChromeTraceAndProfileOut: the profiling flags attach the profiler,
// write both artifacts, and the chrome trace passes the CLI's own linter.
func TestRunChromeTraceAndProfileOut(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "spans.json")
	profile := filepath.Join(dir, "profile.txt")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-chrome-trace", chrome, "-profile-out", profile}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "chrome trace:") || !strings.Contains(got, "spans written to") {
		t.Errorf("missing chrome trace confirmation:\n%s", got)
	}
	data, err := os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Per-core virtual-time attribution") {
		t.Errorf("profile file lacks attribution table:\n%s", data)
	}
	var lintOut strings.Builder
	if err := run([]string{"-lint-chrome", chrome}, &lintOut); err != nil {
		t.Fatalf("-lint-chrome rejected our own export: %v", err)
	}
	if !strings.Contains(lintOut.String(), "chrome trace ok:") {
		t.Errorf("missing lint confirmation:\n%s", lintOut.String())
	}
}

// TestRunLintChromeRejectsGarbage: malformed JSON fails with a non-nil
// error (non-zero exit in main).
func TestRunLintChromeRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"traceEvents":[{"name":"x","ph":"Q"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-lint-chrome", path}, &out); err == nil {
		t.Fatal("-lint-chrome accepted a malformed trace")
	}
}

// TestRunDiffSelfIsIdentical: a trace diffed against itself passes with a
// zero budget; against a different seed's trace it fails.
func TestRunDiffSelfIsIdentical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-trace-out", a}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "2", "-scans", "1", "-tp", "1s", "-trace-out", b}, &out); err != nil {
		t.Fatal(err)
	}

	var diffOut strings.Builder
	if err := run([]string{"-diff", a, a}, &diffOut); err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, diffOut.String())
	}
	if !strings.Contains(diffOut.String(), "zero divergence") {
		t.Errorf("self-diff not reported identical:\n%s", diffOut.String())
	}

	diffOut.Reset()
	if err := run([]string{"-diff", a, b}, &diffOut); err == nil {
		t.Fatal("cross-seed diff passed a zero budget")
	}
	if !strings.Contains(diffOut.String(), "FAIL") {
		t.Errorf("cross-seed diff missing FAIL verdict:\n%s", diffOut.String())
	}
}

// TestRunDiffNeedsTwoFiles: -diff without the positional second trace is a
// usage error.
func TestRunDiffNeedsTwoFiles(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-diff", "a.jsonl"}, &out); err == nil {
		t.Fatal("-diff with one file accepted")
	}
}

// TestRunLintTraceChecksOrder: -lint-trace must reject a stream whose
// timestamps regress.
func TestRunLintTraceChecksOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unordered.jsonl")
	lines := `{"at_ns":2000,"kind":"round","core":0,"area":1}
{"at_ns":1000,"kind":"round","core":0,"area":2}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-lint-trace", path}, &out)
	if err == nil {
		t.Fatal("-lint-trace accepted out-of-order timestamps")
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error does not mention ordering: %v", err)
	}
}
