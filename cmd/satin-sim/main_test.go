package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmokeSATINvsFastEvader(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "SATIN: 19 rounds, 1 full scans, 1 alarms") {
		t.Errorf("unexpected SATIN summary:\n%s", got)
	}
	if !strings.Contains(got, "rootkit: state") || !strings.Contains(got, "evader:") {
		t.Errorf("missing attack-side summary:\n%s", got)
	}
}

func TestRunBaselineDefense(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-defense", "baseline", "-rounds", "3", "-tp", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "baseline: 3 rounds, 3 reported clean") {
		t.Errorf("baseline should be fully evaded:\n%s", got)
	}
}

func TestRunVerbosePrintsRounds(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "round   1:") {
		t.Errorf("-v did not print per-round lines:\n%s", got)
	}
}

func TestRunTimelineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.txt")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-timeline", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("timeline file is empty")
	}
	if !strings.Contains(out.String(), "events written to") {
		t.Errorf("missing timeline confirmation:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-defense", "bogus"},
		{"-evader", "bogus"},
		{"-routing", "bogus"},
		{"-guard", "bogus"},
		{"-defense", "none", "-evader", "none"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTraceOutJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-trace-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events streamed to") {
		t.Errorf("missing stream confirmation:\n%s", out.String())
	}
	// The streamed file must parse back via the lint path.
	var lint strings.Builder
	if err := run([]string{"-lint-trace", path}, &lint); err != nil {
		t.Fatalf("lint of streamed trace failed: %v", err)
	}
	if !strings.Contains(lint.String(), "trace ok:") {
		t.Errorf("missing lint confirmation:\n%s", lint.String())
	}
}

func TestRunTraceOutCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-trace-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "at_ns,kind,core,area,detail\n") {
		t.Errorf("CSV trace missing header:\n%.80s", data)
	}
}

func TestRunMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.csv")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-metrics-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{"name,type,field,value\n", "satin.rounds,counter,value,19\n", "monitor.switch_enter_ns,histogram,count,"} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics CSV missing %q:\n%.400s", want, got)
		}
	}
}

func TestRunLintTraceRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-lint-trace", path}, &out); err == nil {
		t.Error("lint accepted a malformed trace")
	}
}
