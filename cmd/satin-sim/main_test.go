package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmokeSATINvsFastEvader(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "SATIN: 19 rounds, 1 full scans, 1 alarms") {
		t.Errorf("unexpected SATIN summary:\n%s", got)
	}
	if !strings.Contains(got, "rootkit: state") || !strings.Contains(got, "evader:") {
		t.Errorf("missing attack-side summary:\n%s", got)
	}
}

func TestRunBaselineDefense(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-defense", "baseline", "-rounds", "3", "-tp", "1s"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "baseline: 3 rounds, 3 reported clean") {
		t.Errorf("baseline should be fully evaded:\n%s", got)
	}
}

func TestRunVerbosePrintsRounds(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "round   1:") {
		t.Errorf("-v did not print per-round lines:\n%s", got)
	}
}

func TestRunTimelineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tl.txt")
	var out strings.Builder
	if err := run([]string{"-scans", "1", "-tp", "1s", "-timeline", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("timeline file is empty")
	}
	if !strings.Contains(out.String(), "events written to") {
		t.Errorf("missing timeline confirmation:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-defense", "bogus"},
		{"-evader", "bogus"},
		{"-routing", "bogus"},
		{"-guard", "bogus"},
		{"-defense", "none", "-evader", "none"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
