// Evasion: the paper's §IV story. TZ-Evader — core-availability probing
// plus hide/reinstall — defeats the state-of-the-art baseline: a
// random-period, random-core, whole-kernel asynchronous introspection.
// Every baseline round comes back "clean" while the rootkit stays active
// ~99% of the time.
package main

import (
	"fmt"
	"log"
	"time"

	"satin"
)

func main() {
	sc, err := satin.NewScenario(
		satin.WithSeed(7),
		// The strongest pre-SATIN defense: randomized schedule, random
		// core, direct hashing of the whole kernel.
		satin.WithBaseline(satin.BaselineConfig{
			Period:          8 * time.Second,
			RandomizePeriod: true,
			Selection:       satin.RandomCore,
			Technique:       satin.DirectHash,
			MaxRounds:       8,
		}),
		// The full thread-level TZ-Evader: KProber-II probing threads on
		// every core at the paper's 1.8 ms threshold.
		satin.WithThreadEvader(satin.DefaultThreshold),
	)
	if err != nil {
		log.Fatal(err)
	}
	// The thread-level evader probes forever, so drive a bounded horizon:
	// 8 randomized rounds land within 8 × 2·period plus slack.
	sc.Run(150 * time.Second)

	for _, o := range sc.Baseline().Outcomes() {
		verdict := "DETECTED"
		if o.Clean {
			verdict = "clean (evaded)"
		}
		fmt.Printf("round %d on core %d: checked %v of kernel in %v -> %s\n",
			o.Round, o.CoreID, "11.9 MB", o.Elapsed().Truncate(time.Millisecond), verdict)
	}
	// The summary comes from the scenario's Report; only the evader's max
	// staleness needs the component accessor.
	rep := sc.Report()
	fmt.Printf("\nTZ-Evader flagged %d introspection entries (max staleness seen: %v)\n",
		rep.Suspects, sc.ThreadEvader().MaxStaleness().Truncate(time.Microsecond))
	fmt.Printf("evasion success: %d/%d rounds — the rootkit is %v and was hidden only during checks\n",
		rep.BaselineClean, rep.BaselineRounds, rep.RootkitState)
}
