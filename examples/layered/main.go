// Layered defense: the paper's §VII-A and §VII-C argument, end to end.
//
//  1. A SPROBES/TZ-RKP-style synchronous guard write-protects the syscall
//     table and the exception vectors: the rootkit's install is trapped and
//     denied.
//  2. The attacker runs the published bypass — a write-what-where data
//     attack that flips the page-table AP bits — and installs the rootkit
//     without the guard seeing anything.
//  3. Asynchronous introspection (SATIN's area checks) flags BOTH traces on
//     its next pass: the hijacked syscall-table entry (area 14) and the
//     flipped PTE bytes in kernel .data (area 17). One layer's blind spot
//     is the other layer's evidence.
package main

import (
	"fmt"
	"log"

	"satin/internal/experiment"
)

func main() {
	res, err := experiment.RunSyncBypass(2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synchronous guard installed: vector table + syscall table write-protected")
	fmt.Print(res.Render())
	fmt.Println("\n§VII-C: with a small execution overhead, asynchronous introspection")
	fmt.Println("provides one more layer of protection — the bypass that silences the")
	fmt.Println("synchronous guard is itself bytes the asynchronous checker can hash.")
}
