// Overhead: the paper's Figure 7 study. The UnixBench-shaped suite runs
// with SATIN off and on (each core waking every 8 s), in 1-task and 6-task
// configurations, and prints the normalized degradation per program.
// Expect ≈0.7–0.9% averages with spikes on file copy 256 B and pipe-based
// context switching — the paper's 3.556% / 3.912% worst cases.
package main

import (
	"fmt"
	"log"
	"time"

	"satin/internal/experiment"
)

func main() {
	cfg := experiment.DefaultFig7Config()
	cfg.Window = 120 * time.Second // demo-sized; benchtables runs 240 s
	cfg.Seed = 3

	fmt.Println("measuring 12 benchmarks x {1,6} tasks x {SATIN off, on}...")
	res, err := experiment.RunFig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Printf("\npaper: 0.711%% (1-task) / 0.848%% (6-task); worst cases 3.556%% / 3.912%%\n")
}
