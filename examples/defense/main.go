// Defense: the paper's §VI-B1 headline experiment at full scale. SATIN
// (19 areas, random area order, random cores, randomly deviated wake-ups)
// runs 190 rounds — ten complete kernel scans — against TZ-Evader. The
// evader detects every single round, but every recovery effort fails: each
// pass over area 14 catches the hijacked syscall-table entry before the
// trace can be scrubbed.
package main

import (
	"fmt"
	"log"
	"time"

	"satin"
)

func main() {
	cfg := satin.DefaultConfig()
	cfg.Tgoal = 19 * 8 * time.Second // tp = 8 s, the paper's schedule
	cfg.MaxRounds = 190              // ten full scans
	cfg.Seed = 5

	sc, err := satin.NewScenario(
		satin.WithSeed(5),
		satin.WithSATIN(cfg),
		satin.WithFastEvader(0, satin.DefaultThreshold),
	)
	if err != nil {
		log.Fatal(err)
	}
	sc.SATIN().OnAlarm(func(a satin.Alarm) {
		fmt.Printf("ALARM at %8v: round %3d caught area %d dirty\n",
			a.At.Duration().Truncate(time.Second), a.Round, a.Area)
	})
	sc.RunToCompletion()

	// Headline numbers come from the scenario's Report; the per-area gap
	// analysis below still reads the component log.
	rep := sc.Report()
	fmt.Printf("\nsimulated %v of board time\n", rep.Elapsed.Truncate(time.Second))
	fmt.Printf("rounds: %d (%d full scans)\n", rep.SATINRounds, rep.FullScans)
	area14 := sc.SATIN().AreaRounds(14)
	fmt.Printf("area-14 checks: %d, alarms: %d — every recovery effort failed\n",
		len(area14), rep.Alarms)
	if len(area14) > 1 {
		var total time.Duration
		for i := 1; i < len(area14); i++ {
			total += area14[i].Started.Sub(area14[i-1].Started)
		}
		fmt.Printf("average gap between area-14 checks: %v (paper: 141 s)\n",
			(total / time.Duration(len(area14)-1)).Truncate(time.Second))
	}
	fmt.Printf("evader flagged %d/%d rounds (and still lost every race)\n",
		rep.Suspects, rep.SATINRounds)
}
