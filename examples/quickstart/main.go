// Quickstart: boot the simulated Juno r1 board, install the paper's GETTID
// rootkit with a naive attacker (no evasion), run SATIN, and watch the
// alarm fire on area 14 — the introspection area holding the syscall table.
package main

import (
	"fmt"
	"log"
	"time"

	"satin"
)

func main() {
	// SATIN with the paper's defaults, shortened to one full kernel scan
	// with a 1-second average round period so the demo finishes quickly
	// (in *virtual* time — wall time is milliseconds either way).
	cfg := satin.DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19

	sc, err := satin.NewScenario(satin.WithSeed(2024), satin.WithSATIN(cfg))
	if err != nil {
		log.Fatal(err)
	}

	// A naive persistent rootkit: hijack the GETTID syscall-table entry
	// and never hide. (The evasion and defense examples show the real
	// TZ-Evader; this one just demonstrates detection.)
	image := sc.Image()
	entry := image.Layout().SyscallEntryAddr(178 /* gettid */)
	if err := image.Mem().PutUint64(entry, image.ModuleBase()+0x100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rootkit installed: syscall-table entry %#x hijacked\n", entry)

	sc.SATIN().OnAlarm(func(a satin.Alarm) {
		fmt.Printf("!! ALARM at %v: round %d found area %d modified\n",
			a.At.Duration().Truncate(time.Millisecond), a.Round, a.Area)
	})
	sc.RunToCompletion()

	// The end-of-run summary comes straight from the scenario's Report.
	rep := sc.Report()
	fmt.Printf("ran %d introspection rounds over %v of board time\n",
		rep.SATINRounds, rep.Elapsed.Truncate(time.Millisecond))
	fmt.Printf("alarms raised: %d (the syscall table lives in area 14)\n", rep.Alarms)
	if rep.Detected {
		fmt.Println("verdict: the rootkit was detected")
	}
}
