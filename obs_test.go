package satin

// Tests for the observability layer as seen through the facade: the
// streamed timeline must reproduce the original post-hoc merge byte for
// byte, exports must be deterministic across worker counts, and the
// summary Report must agree with the component logs.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenScenario builds the exact configuration the checked-in golden
// timeline (testdata/timeline_seed1.golden) was captured from, on the
// pre-observability code.
func goldenScenario(t *testing.T, extra ...Option) *Scenario {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 19
	cfg.Seed = 3
	opts := append([]Option{WithSeed(1), WithSATIN(cfg), WithFastEvader(0, 0)}, extra...)
	sc, err := NewScenario(opts...)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return sc
}

// TestTimelineGolden locks Scenario.Timeline() output to the pre-refactor
// post-hoc merge: the golden file was generated before the timeline became
// a live bus subscription, so any byte of drift here is an ordering or
// content regression in the streaming path.
func TestTimelineGolden(t *testing.T) {
	sc := goldenScenario(t)
	sc.RunToCompletion()
	var got bytes.Buffer
	if err := sc.Timeline().WriteText(&got); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "timeline_seed1.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("timeline drifted from pre-refactor golden\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestStreamExportGolden locks the JSONL and CSV streaming exports for the
// golden scenario against checked-in files.
func TestStreamExportGolden(t *testing.T) {
	for _, tc := range []struct {
		format ExportFormat
		file   string
	}{
		{ExportJSONL, "trace_seed1.jsonl.golden"},
		{ExportCSV, "trace_seed1.csv.golden"},
	} {
		t.Run(tc.format.String(), func(t *testing.T) {
			sc := goldenScenario(t)
			var out bytes.Buffer
			sink, err := NewStreamSink(&out, tc.format)
			if err != nil {
				t.Fatalf("NewStreamSink: %v", err)
			}
			sc.Bus().Subscribe(sink.OnEvent)
			sc.RunToCompletion()
			if err := sink.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if sink.Events() == 0 {
				t.Fatal("stream sink saw no events")
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("%s export drifted from golden\n--- got ---\n%s", tc.format, out.String())
			}
		})
	}
}

// TestStreamJSONLRoundTrip checks the exported JSONL parses back into the
// same events the timeline recorded (in publish order).
func TestStreamJSONLRoundTrip(t *testing.T) {
	sc := goldenScenario(t)
	var out bytes.Buffer
	sink, err := NewStreamSink(&out, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	sc.RunToCompletion()
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	events, err := ReadTraceJSONL(&out)
	if err != nil {
		t.Fatalf("ReadTraceJSONL: %v", err)
	}
	if len(events) != sc.Timeline().Len() {
		t.Fatalf("round trip lost events: parsed %d, timeline has %d", len(events), sc.Timeline().Len())
	}
	for _, e := range events {
		if e.Kind == "" {
			t.Fatal("round-tripped event with empty kind")
		}
	}
}

// runSeedExports runs the golden scenario for several consecutive seeds
// under the given worker count and returns, per seed, the JSONL export and
// the rendered metrics snapshot.
func runSeedExports(t *testing.T, workers int) (traces, metrics []string) {
	t.Helper()
	const seeds = 4
	traces = make([]string, seeds)
	metrics = make([]string, seeds)
	_, err := RunSeedsObserved(context.Background(), "determinism", 1, seeds, workers, nil,
		func(seed uint64) (SweepMetrics, error) {
			cfg := DefaultConfig()
			cfg.Tgoal = 19 * time.Second
			cfg.MaxRounds = 19
			cfg.Seed = 3
			sc, err := NewScenario(WithSeed(seed), WithSATIN(cfg), WithFastEvader(0, 0))
			if err != nil {
				return nil, err
			}
			var out bytes.Buffer
			sink, err := NewStreamSink(&out, ExportJSONL)
			if err != nil {
				return nil, err
			}
			sc.Bus().Subscribe(sink.OnEvent)
			sc.RunToCompletion()
			if err := sink.Flush(); err != nil {
				return nil, err
			}
			traces[seed-1] = out.String()
			metrics[seed-1] = sc.Metrics().String()
			return SweepMetrics{}.Add("alarms", float64(len(sc.SATIN().Alarms()))), nil
		})
	if err != nil {
		t.Fatalf("RunSeedsObserved(workers=%d): %v", workers, err)
	}
	return traces, metrics
}

// TestExportDeterminismAcrossWorkers is the acceptance check: for a fixed
// seed, the streamed JSONL and the Metrics snapshot must be byte-identical
// whether trials run on one worker or eight.
func TestExportDeterminismAcrossWorkers(t *testing.T) {
	traces1, metrics1 := runSeedExports(t, 1)
	traces8, metrics8 := runSeedExports(t, 8)
	for i := range traces1 {
		if traces1[i] == "" {
			t.Fatalf("seed %d produced an empty trace", i+1)
		}
		if traces1[i] != traces8[i] {
			t.Errorf("seed %d: JSONL export differs between workers=1 and workers=8", i+1)
		}
		if metrics1[i] != metrics8[i] {
			t.Errorf("seed %d: metrics snapshot differs between workers=1 and workers=8", i+1)
		}
	}
}

// TestMetricsAgreeWithLogs cross-checks the counters against the component
// logs the metrics are supposed to mirror.
func TestMetricsAgreeWithLogs(t *testing.T) {
	sc := goldenScenario(t)
	sc.RunToCompletion()
	snap := sc.Metrics()

	rounds, ok := snap.Get("satin.rounds")
	if !ok || rounds.Value != int64(len(sc.SATIN().Rounds())) {
		t.Errorf("satin.rounds = %d (present=%v), want %d", rounds.Value, ok, len(sc.SATIN().Rounds()))
	}
	alarms, ok := snap.Get("satin.alarms")
	if !ok || alarms.Value != int64(len(sc.SATIN().Alarms())) {
		t.Errorf("satin.alarms = %d (present=%v), want %d", alarms.Value, ok, len(sc.SATIN().Alarms()))
	}
	entries, ok := snap.Get("monitor.world_entries")
	if !ok || entries.Value != int64(len(sc.Monitor().Switches())) {
		t.Errorf("monitor.world_entries = %d (present=%v), want %d", entries.Value, ok, len(sc.Monitor().Switches()))
	}
	enterHist, ok := snap.Get("monitor.switch_enter_ns")
	if !ok || enterHist.Count != int64(len(sc.Monitor().Switches())) {
		t.Errorf("monitor.switch_enter_ns count = %d (present=%v), want %d", enterHist.Count, ok, len(sc.Monitor().Switches()))
	}
	dispatched, ok := snap.Get("engine.events_dispatched")
	if !ok || dispatched.Value != int64(sc.Engine().Dispatched()) {
		t.Errorf("engine.events_dispatched = %d (present=%v), want %d", dispatched.Value, ok, sc.Engine().Dispatched())
	}
	if rep := sc.Report(); rep.Suspects == 0 {
		t.Error("Report.Suspects = 0, want the evader to have reacted")
	}
	suspects, ok := snap.Get("evader.suspects")
	if !ok || suspects.Value != int64(sc.Report().Suspects) {
		t.Errorf("evader.suspects = %d (present=%v), want %d", suspects.Value, ok, sc.Report().Suspects)
	}
}

// TestReportSummarizesRun checks Report against the accessors it abstracts.
func TestReportSummarizesRun(t *testing.T) {
	sc := goldenScenario(t)
	sc.RunToCompletion()
	r := sc.Report()
	if r.Seed != 1 {
		t.Errorf("Seed = %d, want 1", r.Seed)
	}
	if r.Elapsed != sc.Now() {
		t.Errorf("Elapsed = %v, want %v", r.Elapsed, sc.Now())
	}
	if r.SATINRounds != 19 {
		t.Errorf("SATINRounds = %d, want 19", r.SATINRounds)
	}
	if r.FullScans != sc.SATIN().FullScans() {
		t.Errorf("FullScans = %d, want %d", r.FullScans, sc.SATIN().FullScans())
	}
	if got := len(sc.SATIN().Alarms()); r.Alarms != got {
		t.Errorf("Alarms = %d, want %d", r.Alarms, got)
	}
	if r.Detected != (r.Alarms > 0) {
		t.Errorf("Detected = %v with %d alarms", r.Detected, r.Alarms)
	}
	if r.RootkitState != sc.Rootkit().State().String() {
		t.Errorf("RootkitState = %q, want %q", r.RootkitState, sc.Rootkit().State())
	}
	if len(r.Metrics.Rows) == 0 {
		t.Error("Report.Metrics is empty with observability enabled")
	}
}

// TestObservabilityDisabled checks the opt-out: no bus, empty timeline and
// metrics, but the simulation itself is unchanged.
func TestObservabilityDisabled(t *testing.T) {
	on := goldenScenario(t)
	on.RunToCompletion()
	off := goldenScenario(t, WithObservability(false))
	off.RunToCompletion()

	if off.Bus() != nil {
		t.Error("Bus() != nil with observability disabled")
	}
	if n := off.Timeline().Len(); n != 0 {
		t.Errorf("Timeline has %d events with observability disabled", n)
	}
	if n := len(off.Metrics().Rows); n != 0 {
		t.Errorf("Metrics has %d rows with observability disabled", n)
	}
	// The simulation must not notice the difference.
	if got, want := len(off.SATIN().Rounds()), len(on.SATIN().Rounds()); got != want {
		t.Errorf("rounds differ with observability off: %d vs %d", got, want)
	}
	if got, want := off.Engine().Dispatched(), on.Engine().Dispatched(); got != want {
		t.Errorf("dispatched events differ with observability off: %d vs %d", got, want)
	}
	ron, roff := on.Report(), off.Report()
	ron.Metrics, roff.Metrics = MetricsSnapshot{}, MetricsSnapshot{}
	if fmt.Sprintf("%+v", ron) != fmt.Sprintf("%+v", roff) {
		t.Errorf("Report differs with observability off:\non:  %+v\noff: %+v", ron, roff)
	}
}

// TestWithRoutingEquivalence checks the WithRouting fix: passing the
// default explicitly must behave exactly like omitting the option (the old
// code silently dropped it), and an invalid mode must fail construction.
func TestWithRoutingEquivalence(t *testing.T) {
	implicit := goldenScenario(t)
	explicit := goldenScenario(t, WithRouting(NonPreemptive))
	if implicit.Monitor().Routing() != NonPreemptive || explicit.Monitor().Routing() != NonPreemptive {
		t.Fatalf("routing modes: implicit=%v explicit=%v, want both %v",
			implicit.Monitor().Routing(), explicit.Monitor().Routing(), NonPreemptive)
	}
	implicit.RunToCompletion()
	explicit.RunToCompletion()
	var a, b bytes.Buffer
	if err := implicit.Timeline().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := explicit.Timeline().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WithRouting(NonPreemptive) changed the run vs omitting the option")
	}
	if a.String() != b.String() || implicit.Metrics().String() != explicit.Metrics().String() {
		t.Error("WithRouting(NonPreemptive) changed metrics vs omitting the option")
	}

	if _, err := NewScenario(WithSeed(1), WithRouting(RoutingMode(0))); err == nil {
		t.Error("NewScenario accepted the zero RoutingMode")
	} else if !strings.Contains(err.Error(), "routing") {
		t.Errorf("zero RoutingMode error %q does not mention routing", err)
	}
	if _, err := NewScenario(WithSeed(1), WithRouting(RoutingMode(99))); err == nil {
		t.Error("NewScenario accepted RoutingMode(99)")
	}
}
