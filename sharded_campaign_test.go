package satin

// Sharded execution against the committed corpus: planning the smoke
// campaign into shards, running each shard as its own session, and merging
// must land byte-for-byte on the same golden a single process produces.
// Plus the kill-inside-a-group resume contract: a session truncated by
// MaxCells (grouping disabled) can leave a checkpoint group half done, and
// the forked resume must still finalize to the uninterrupted bytes.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"satin/internal/campaign"
	"satin/internal/serve"
	"satin/internal/shard"
)

// TestShardedMergeReproducesGolden: smoke campaign over 1..4 shards, each
// shard its own session, merged — always the committed golden bytes.
func TestShardedMergeReproducesGolden(t *testing.T) {
	c := smokeCampaign(t)
	canon, err := campaign.Canonicalize(c)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	cells, err := campaign.Cells(canon)
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	golden := smokeGolden(t)
	for _, k := range []int{1, 2, 3, 4} {
		k := k
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) {
			plan, err := shard.PlanCells(cells, k, CheckpointGroupKey)
			if err != nil {
				t.Fatalf("PlanCells: %v", err)
			}
			dir := t.TempDir()
			var paths []string
			for si, only := range plan.Shards {
				path := filepath.Join(dir, fmt.Sprintf("shard-%d.result", si))
				paths = append(paths, path)
				res, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
					Workers:    2,
					Only:       only,
					SpecTrial:  RunSpecTrial,
					GroupKey:   CheckpointGroupKey,
					GroupTrial: RunCheckpointGroup,
				})
				if err != nil {
					t.Fatalf("shard %d: %v", si, err)
				}
				if res.Finalized {
					t.Fatalf("shard %d session finalized", si)
				}
			}
			merged := filepath.Join(dir, "merged.result")
			n, err := campaign.Merge(merged, paths...)
			if err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if n != len(cells) {
				t.Fatalf("Merge combined %d cells, want %d", n, len(cells))
			}
			got, err := os.ReadFile(merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Errorf("merged %d-shard result drifted from testdata/campaigns/smoke.result.golden", k)
			}
		})
	}
}

// TestShardedServeGoldenWhileScraped: the full coordinator/worker protocol
// drains the smoke campaign while a scraper hammers /metrics and /healthz
// the whole time — telemetry is a side channel, so the merged result must
// still be the committed golden bytes.
func TestShardedServeGoldenWhileScraped(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "campaigns", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Options{DataDir: t.TempDir(), GroupKey: CheckpointGroupKey})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := client.Submit(ctx, data, 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			if err := client.Healthz(ctx); err != nil {
				t.Errorf("Healthz during run: %v", err)
			}
			if _, err := client.MetricsText(ctx); err != nil {
				t.Errorf("MetricsText during run: %v", err)
			}
			n++
		}
	}()

	err = serve.RunWorker(ctx, client, serve.WorkerOptions{
		Name:       "scraped-worker",
		Dir:        t.TempDir(),
		Trial:      RunSpecTrial,
		GroupKey:   CheckpointGroupKey,
		GroupTrial: RunCheckpointGroup,
		Workers:    2,
		Poll:       time.Millisecond,
	})
	close(stop)
	n := <-scraped
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if n == 0 {
		t.Fatal("scraper never completed a pass; the invariance claim was not exercised")
	}

	got, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if !bytes.Equal(got, smokeGolden(t)) {
		t.Errorf("scrape-concurrent sharded result drifted from testdata/campaigns/smoke.result.golden (%d scrapes)", n)
	}
}

// TestForkResumeAfterKillInsideGroup: leg 1 runs under MaxCells — grouping
// is disabled there, so the kill can land inside what the forked executor
// would treat as one group, leaving it half-checkpointed. The resume runs
// with forking on, so the group's remaining members fork as a partial
// group; the finalized file must still be byte-identical to an
// uninterrupted forked run (and an uninterrupted plain run).
func TestForkResumeAfterKillInsideGroup(t *testing.T) {
	tmpl := ckptSpec(45*time.Second, "")
	c := campaign.Spec{
		Version:  campaign.CurrentVersion,
		Name:     "fork-resume-kill",
		Scenario: &tmpl,
		Faults: []string{
			"",
			"dvfs:at=35s,factor=0.8",
			"dvfs:at=40s,factor=1.2",
			"hotplug:core=1,off=36s,on=42s",
		},
		Seeds: campaign.SeedRange{Base: 1, Count: 2},
	}

	uninterrupted := filepath.Join(t.TempDir(), "full.result")
	res, err := campaign.Run(context.Background(), c, uninterrupted, campaign.RunOptions{
		Workers:    2,
		SpecTrial:  RunSpecTrial,
		GroupKey:   CheckpointGroupKey,
		GroupTrial: RunCheckpointGroup,
	})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if !res.Finalized {
		t.Fatal("uninterrupted run did not finalize")
	}
	want, err := os.ReadFile(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}

	// The campaign has 2 seed groups of 4 cells each; killing after 2 cells
	// lands mid-way through the first group.
	path := filepath.Join(t.TempDir(), "killed.result")
	first, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		Workers:    1,
		MaxCells:   2,
		SpecTrial:  RunSpecTrial,
		GroupKey:   CheckpointGroupKey,
		GroupTrial: RunCheckpointGroup,
	})
	if err != nil {
		t.Fatalf("truncated run: %v", err)
	}
	if first.Finalized || first.NewlyDone != 2 {
		t.Fatalf("truncated run: finalized %v, newly done %d (want unfinalized, 2)", first.Finalized, first.NewlyDone)
	}

	groups := 0
	var groupSizes []int
	second, err := campaign.Run(context.Background(), c, path, campaign.RunOptions{
		Workers:   2,
		SpecTrial: RunSpecTrial,
		GroupKey:  CheckpointGroupKey,
		GroupTrial: func(ctx context.Context, members []ScenarioSpec) []campaign.GroupResult {
			groups++
			groupSizes = append(groupSizes, len(members))
			return RunCheckpointGroup(ctx, members)
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !second.Finalized {
		t.Fatal("resume did not finalize")
	}
	if second.NewlyDone != 6 {
		t.Fatalf("resume completed %d cells, want the remaining 6", second.NewlyDone)
	}
	if groups == 0 {
		t.Fatal("resume never forked a group despite forking enabled")
	}
	// The interrupted group resumes as a partial group (its remaining
	// members), not re-running the checkpointed ones.
	for _, n := range groupSizes {
		if n > 4 {
			t.Fatalf("resume forked a %d-member group in a 4-per-group campaign", n)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("kill-inside-group resume drifted from uninterrupted forked bytes")
	}
}
