package satin

// Golden byte-identity regression for the incremental hash cache: the cache
// (and the rest of the hot-path overhaul) may only change wall-clock time,
// never a virtual-time outcome. The cache-enabled path is already locked by
// the golden tests in obs_test.go and faults_test.go; here the same runs are
// repeated with the cache force-disabled via WithHashCache(false) and
// compared against the same checked-in goldens and against each other.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// runGoldenTrace runs the golden scenario with the given extra options and
// returns its streamed JSONL, rendered timeline, and metrics snapshot.
func runGoldenTrace(t *testing.T, extra ...Option) (trace, timeline, metrics string, sc *Scenario) {
	t.Helper()
	sc = goldenScenario(t, extra...)
	var out bytes.Buffer
	sink, err := NewStreamSink(&out, ExportJSONL)
	if err != nil {
		t.Fatalf("NewStreamSink: %v", err)
	}
	sc.Bus().Subscribe(sink.OnEvent)
	sc.RunToCompletion()
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var tl bytes.Buffer
	if err := sc.Timeline().WriteText(&tl); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return out.String(), tl.String(), sc.Metrics().String(), sc
}

// TestHashCacheDisabledMatchesGoldens: the seed-1 golden run with the cache
// force-disabled must reproduce the checked-in timeline and JSONL goldens
// byte for byte — proving the naive path is still exactly the pre-overhaul
// simulation.
func TestHashCacheDisabledMatchesGoldens(t *testing.T) {
	trace, timeline, _, sc := runGoldenTrace(t, WithHashCache(false))
	if hits, misses := sc.Checker().CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("disabled cache saw traffic: %d hits / %d misses", hits, misses)
	}
	for _, tc := range []struct {
		got  string
		file string
	}{
		{timeline, "timeline_seed1.golden"},
		{trace, "trace_seed1.jsonl.golden"},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("reading golden: %v", err)
		}
		if tc.got != string(want) {
			t.Errorf("cache-off run drifted from %s", tc.file)
		}
	}
}

// TestHashCacheOnOffIdentical compares complete cache-on and cache-off runs —
// trace, timeline, metrics, and Report — for the clean golden scenario and
// the faulted variant. The cache must be invisible everywhere except its own
// hit/miss counters, which are excluded from the metrics comparison.
func TestHashCacheOnOffIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		wantHits bool
		extra    func(t *testing.T) []Option
	}{
		// The 19-round golden budget is exactly one full scan — no chunk is
		// visited twice, so these two variants exercise the all-miss path.
		{"clean", false, func(*testing.T) []Option { return nil }},
		{"faulted", false, func(t *testing.T) []Option { return []Option{WithFaultPlan(faultedGoldenPlan(t))} }},
		// Two full scans: the second scan is served almost entirely from the
		// cache, so this variant exercises the hit path the others cannot.
		{"two-scans", true, func(*testing.T) []Option {
			cfg := DefaultConfig()
			cfg.Tgoal = 19 * time.Second
			cfg.MaxRounds = 38
			cfg.Seed = 3
			return []Option{WithSATIN(cfg)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			onTrace, onTL, onMetrics, onSc := runGoldenTrace(t, tc.extra(t)...)
			offTrace, offTL, offMetrics, offSc := runGoldenTrace(t, append(tc.extra(t), WithHashCache(false))...)
			if !onSc.Checker().HashCacheEnabled() || offSc.Checker().HashCacheEnabled() {
				t.Fatal("cache toggle not reflected by the checkers")
			}
			if hits, misses := onSc.Checker().CacheStats(); tc.wantHits && hits == 0 {
				t.Error("cache-on run recorded no hits; the identity check proved nothing")
			} else if misses == 0 {
				t.Error("cache-on run recorded no misses; the checker never consulted the cache")
			}
			if onTrace != offTrace {
				t.Error("JSONL trace differs between cache on and off")
			}
			if onTL != offTL {
				t.Error("timeline differs between cache on and off")
			}
			scrub := func(s string) string {
				var kept bytes.Buffer
				for _, line := range bytes.Split([]byte(s), []byte("\n")) {
					if bytes.Contains(line, []byte("introspect.cache_")) {
						continue
					}
					kept.Write(line)
					kept.WriteByte('\n')
				}
				return kept.String()
			}
			if scrub(onMetrics) != scrub(offMetrics) {
				t.Errorf("metrics differ between cache on and off:\n--- on ---\n%s--- off ---\n%s",
					scrub(onMetrics), scrub(offMetrics))
			}
			ron, roff := onSc.Report(), offSc.Report()
			ron.Metrics, roff.Metrics = MetricsSnapshot{}, MetricsSnapshot{}
			if fmt.Sprintf("%+v", ron) != fmt.Sprintf("%+v", roff) {
				t.Errorf("Report differs between cache on and off:\non:  %+v\noff: %+v", ron, roff)
			}
		})
	}
}
