package satin

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each runs the corresponding experiment driver
// and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates every reported number. The
// cmd/benchtables binary prints the full rendered tables.

import (
	"context"
	"strings"
	"testing"
	"time"

	"satin/internal/experiment"
	"satin/internal/hw"
	"satin/internal/introspect"
)

// BenchmarkTable1IntrospectionTime regenerates Table I: per-byte secure
// world introspection times (hash vs snapshot, A53 vs A57).
func BenchmarkTable1IntrospectionTime(b *testing.B) {
	b.ReportAllocs()
	var res experiment.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable1(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, cell := range res.Cells {
		name := cell.Core.String() + "-" + cell.Technique.String() + "-avg-ns/B"
		b.ReportMetric(cell.PerByte.Mean*1e9, name)
	}
}

// BenchmarkSwitchTime regenerates the §IV-B1 Ts_switch measurement.
func BenchmarkSwitchTime(b *testing.B) {
	b.ReportAllocs()
	var res experiment.SwitchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSwitch(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.A53.Mean*1e6, "A53-Ts_switch-µs")
	b.ReportMetric(res.A57.Mean*1e6, "A57-Ts_switch-µs")
}

// BenchmarkRecoverTime regenerates the §IV-B2 Tns_recover measurement.
func BenchmarkRecoverTime(b *testing.B) {
	b.ReportAllocs()
	var res experiment.RecoverResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunRecover(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.A53.Mean*1e3, "A53-Tns_recover-ms")
	b.ReportMetric(res.A57.Mean*1e3, "A57-Tns_recover-ms")
}

// BenchmarkTable2ProbingThreshold regenerates Table II: probing thresholds
// across the five probing periods.
func BenchmarkTable2ProbingThreshold(b *testing.B) {
	b.ReportAllocs()
	var res experiment.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable2(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Thresholds.Mean*1e6, row.Period.String()+"-avg-µs")
	}
}

// BenchmarkFig4ThresholdStability regenerates Figure 4's box-plot data
// (same sampler as Table II; the metric here is the spread).
func BenchmarkFig4ThresholdStability(b *testing.B) {
	b.ReportAllocs()
	var res experiment.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable2(uint64(i + 100))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Box.Median*1e6, row.Period.String()+"-median-µs")
		b.ReportMetric(float64(len(row.Box.Outliers)), row.Period.String()+"-outliers")
	}
}

// BenchmarkSingleCoreProbing regenerates the §IV-B2 single-core-vs-all
// probing comparison (ratio ≈ 1/4).
func BenchmarkSingleCoreProbing(b *testing.B) {
	b.ReportAllocs()
	var res experiment.SingleCoreResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSingleCore(uint64(i+1), 8*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Ratio, "single/all-ratio")
}

// BenchmarkFig3RaceTimeline regenerates Figure 3: the measured race
// timelines for a whole-kernel check (evader wins) and a SATIN-sized area
// check (defender wins).
func BenchmarkFig3RaceTimeline(b *testing.B) {
	b.ReportAllocs()
	var res []experiment.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunFig3(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		label := "baseline"
		if r.Detected {
			label = "satin"
		}
		b.ReportMetric((r.TouchMalicious-r.TStart).Seconds()*1e3, label+"-touch-ms")
		b.ReportMetric((r.TraceGone-r.TStart).Seconds()*1e3, label+"-recover-ms")
	}
}

// BenchmarkRaceAnalysis regenerates the §IV-C race analysis: Equation 2's
// S bound and the unprotected kernel fraction.
func BenchmarkRaceAnalysis(b *testing.B) {
	b.ReportAllocs()
	var res experiment.RaceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunRace(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SBound), "S-bound-bytes")
	b.ReportMetric(res.UnprotectedAnalytic*100, "unprotected-analytic-%")
	b.ReportMetric(res.UnprotectedEmpirical*100, "unprotected-empirical-%")
}

// BenchmarkEvasionVsBaseline regenerates the §IV/§VI premise: TZ-Evader's
// success against the randomized full-kernel baseline.
func BenchmarkEvasionVsBaseline(b *testing.B) {
	b.ReportAllocs()
	var res experiment.EvasionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunEvasion(uint64(i+1), 10, 8*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EvasionRate*100, "evasion-rate-%")
	b.ReportMetric(res.ActiveFraction*100, "attack-active-%")
}

// BenchmarkDetection regenerates the §VI-B1 headline experiment at paper
// scale: 190 SATIN rounds (10 full scans) vs TZ-Evader.
func BenchmarkDetection(b *testing.B) {
	b.ReportAllocs()
	var res experiment.DetectionResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultDetectionConfig()
		cfg.Seed = uint64(i + 1)
		var err error
		res, err = experiment.RunDetection(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Detections), "detections")
	b.ReportMetric(float64(res.FalseNegatives), "prober-FN")
	b.ReportMetric(float64(res.FalsePositives), "prober-FP")
	b.ReportMetric(res.MeanAttackedAreaGap.Seconds(), "area14-gap-s")
	b.ReportMetric(res.MeanFullScanTime.Seconds(), "full-scan-s")
}

// BenchmarkDetectionProfiled is BenchmarkDetection with the causal span
// profiler attached — the attached-overhead half of the PR 5 bench guard
// (make bench-json diffs it against the committed profiler-off baseline;
// the target is ≤10% ns/op overhead). It reports the same metrics so the
// two runs pair by name after the sed rename in the Makefile.
func BenchmarkDetectionProfiled(b *testing.B) {
	b.ReportAllocs()
	var res experiment.DetectionResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultDetectionConfig()
		cfg.Seed = uint64(i + 1)
		cfg.Profile = true
		var err error
		res, err = experiment.RunDetection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Profile == nil || res.Profile.Rounds != res.Rounds {
			b.Fatalf("profiled run lost spans: %+v", res.Profile)
		}
	}
	b.ReportMetric(float64(res.Rounds), "rounds")
	b.ReportMetric(float64(res.Detections), "detections")
	b.ReportMetric(float64(res.FalseNegatives), "prober-FN")
	b.ReportMetric(float64(res.FalsePositives), "prober-FP")
	b.ReportMetric(res.MeanAttackedAreaGap.Seconds(), "area14-gap-s")
	b.ReportMetric(res.MeanFullScanTime.Seconds(), "full-scan-s")
}

// BenchmarkFig7Overhead regenerates Figure 7: per-benchmark normalized
// degradation under SATIN, 1-task and 6-task.
func BenchmarkFig7Overhead(b *testing.B) {
	b.ReportAllocs()
	var res experiment.Fig7Result
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultFig7Config()
		cfg.Seed = uint64(i + 1)
		var err error
		res, err = experiment.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Average(1)*100, "avg-1task-%")
	b.ReportMetric(res.Average(6)*100, "avg-6task-%")
	if row, err := res.Row("file_copy_256B", 1); err == nil {
		b.ReportMetric(row.Degradation*100, "file_copy_256B-%")
	}
	if row, err := res.Row("context_switching", 1); err == nil {
		b.ReportMetric(row.Degradation*100, "context_switching-%")
	}
}

// BenchmarkAblation regenerates the design-choice ablation (DESIGN.md E11).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	var res experiment.AblationResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultAblationConfig()
		cfg.Seed = uint64(i + 1)
		var err error
		res, err = experiment.RunAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		name := strings.ReplaceAll(row.Variant.String(), " ", "-")
		name = strings.NewReplacer("(", "", ")", "").Replace(name)
		b.ReportMetric(row.Rate()*100, name+"-%")
	}
}

// BenchmarkMSweep regenerates the trace-size sweep (§IV-C observation 4):
// the M crossover where recovery stops beating a whole-kernel scan.
func BenchmarkMSweep(b *testing.B) {
	b.ReportAllocs()
	var res experiment.MSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunMSweep(uint64(i+1), 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MeasuredCrossoverM()), "crossover-M-bytes")
	b.ReportMetric(float64(res.PredictedCrossoverM), "predicted-M-bytes")
}

// BenchmarkInterruptFlood regenerates the §II-B/§V-B routing ablation: an
// SGI flood against non-preemptive (SATIN's SCR_EL3.IRQ=0) vs preemptive
// secure-world routing.
func BenchmarkInterruptFlood(b *testing.B) {
	b.ReportAllocs()
	var res experiment.FloodResult
	for i := 0; i < b.N; i++ {
		cfg := experiment.DefaultFloodConfig()
		cfg.Seed = uint64(i + 1)
		var err error
		res, err = experiment.RunFlood(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.Rate()*100, row.Routing.String()+"-detection-%")
		b.ReportMetric(row.MeanRound.Seconds()*1e3, row.Routing.String()+"-round-ms")
	}
}

// BenchmarkSyncBypass regenerates the §VII-A/§VII-C layered-defense study.
func BenchmarkSyncBypass(b *testing.B) {
	b.ReportAllocs()
	var res experiment.SyncBypassResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSyncBypass(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(res.InstallDenied), "guard-denied")
	b.ReportMetric(boolMetric(res.BypassSucceeded), "bypass-ok")
	b.ReportMetric(float64(len(res.DirtyAreas)), "async-dirty-areas")
}

// BenchmarkUserProber regenerates the §III-B1 user-level prober evaluation.
func BenchmarkUserProber(b *testing.B) {
	b.ReportAllocs()
	var res experiment.UserProberResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunUserProber(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Delay.Seconds()*1e3, "Tns_delay-ms")
	b.ReportMetric(boolMetric(res.Capable()), "capable")
}

// BenchmarkKProber1Exposure regenerates the §III-C1 self-exposure study.
func BenchmarkKProber1Exposure(b *testing.B) {
	b.ReportAllocs()
	var res experiment.KProber1ExposureResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunKProber1Exposure(uint64(i+1), 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Area0Alarms), "area0-alarms")
	b.ReportMetric(float64(res.Passes), "passes")
}

// BenchmarkFullKernelHash measures the raw simulated cost drivers: one
// whole-kernel direct-hash check per core type (the ≈80 ms / ≈127 ms the
// race analysis builds on), as wall-clock work for the simulator.
func BenchmarkFullKernelHash(b *testing.B) {
	for _, core := range []hw.CoreType{hw.CortexA53, hw.CortexA57} {
		core := core
		b.Run(core.String(), func(b *testing.B) {
			res, err := experiment.RunTable1(1)
			if err != nil {
				b.Fatal(err)
			}
			cell, err := res.Cell(core, introspect.DirectHash)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_ = cell
			}
			b.ReportMetric(cell.PerByte.Mean*11916240*1e3, "kernel-check-ms")
		})
	}
}

// BenchmarkSensitivitySweep measures the fault-injection sensitivity sweep
// at a reduced but representative scale (2 magnitudes × 2 seeds, 4 full
// scans each), run serially so the number tracks the simulator's single-run
// hot path rather than worker-pool scheduling. BENCH_PR4.json records this
// as the second headline wall-clock number.
func BenchmarkSensitivitySweep(b *testing.B) {
	b.ReportAllocs()
	cfg := experiment.DefaultSensitivityConfig()
	cfg.Magnitudes = []float64{0, 2}
	cfg.Seeds = 2
	cfg.Workers = 1
	cfg.Detection.FullScans = 4
	var res experiment.SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSensitivity(context.Background(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].Detection.Mean*100, "mag0-detection-%")
	b.ReportMetric(res.Points[len(res.Points)-1].Detection.Mean*100, "mag2-detection-%")
}

// BenchmarkSteadyStateRounds measures the marginal cost of SATIN
// introspection rounds once the scenario is booted and warm: each b.N
// iteration advances an already-running scenario by 19 virtual seconds
// (≈19 rounds at tp = 1 s). Boot, golden-table hashing, and the first two
// full scans happen before the timer starts, so ns/op and allocs/op are the
// steady-state per-span numbers — the quantity the incremental hash cache
// and allocation-free scheduling target.
func BenchmarkSteadyStateRounds(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Tgoal = 19 * time.Second
	cfg.MaxRounds = 0
	cfg.Seed = 3
	sc, err := NewScenario(WithSeed(1), WithSATIN(cfg), WithObservability(false))
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up: two full scans.
	sc.Run(40 * time.Second)
	warm := len(sc.SATIN().Rounds())
	if warm == 0 {
		b.Fatal("no rounds completed during warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Run(19 * time.Second)
	}
	b.StopTimer()
	rounds := len(sc.SATIN().Rounds()) - warm
	if rounds == 0 {
		b.Fatal("no rounds completed during measurement")
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// BenchmarkScenario measures one full SATIN-vs-fast-evader run — the
// engine's hot path end to end. The `observability-off` variant is the
// zero-overhead-when-disabled check: with no bus, no registry, and no
// sinks, per-run allocations must not exceed the pre-observability
// baseline (publishes early-return on the nil bus and all metric handles
// are nil no-ops). The `observability-on` variant shows the cost of live
// timeline capture plus metrics.
func BenchmarkScenario(b *testing.B) {
	runOnce := func(b *testing.B, opts ...Option) {
		b.Helper()
		cfg := DefaultConfig()
		cfg.Tgoal = 19 * time.Second
		cfg.MaxRounds = 19
		cfg.Seed = 3
		opts = append([]Option{WithSeed(1), WithSATIN(cfg), WithFastEvader(0, 0)}, opts...)
		sc, err := NewScenario(opts...)
		if err != nil {
			b.Fatal(err)
		}
		sc.RunToCompletion()
		if len(sc.SATIN().Rounds()) != 19 {
			b.Fatalf("expected 19 rounds, got %d", len(sc.SATIN().Rounds()))
		}
	}
	b.Run("observability-off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, WithObservability(false))
		}
	})
	b.Run("observability-on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b)
		}
	})
	// The span profiler rides on the observability layer; this variant
	// shows its marginal cost over observability-on. Detached (the two
	// variants above) it costs zero — every SetProfiler target holds a nil
	// handle and each emit is one nil check (locked by the profile
	// package's AllocsPerRun test).
	b.Run("profiling-on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b, WithProfiling(true))
		}
	})
}
