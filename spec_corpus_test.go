package satin

// The conformance-corpus contract, in-process: every manifest row's spec
// reproduces its golden export byte for byte through FromSpec, and every
// committed spec file is already in canonical form (so -dump-spec of a
// corpus spec is the identity). `make spec-corpus-check` enforces the same
// contract through the satin-sim binary.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusManifest parses testdata/specs/corpus.manifest into
// (spec, kind, golden) rows.
func corpusManifest(t *testing.T) [][3]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "specs", "corpus.manifest"))
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	var rows [][3]string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			t.Fatalf("manifest line %q is not <spec> <kind> <golden>", line)
		}
		rows = append(rows, [3]string{fields[0], fields[1], fields[2]})
	}
	if len(rows) == 0 {
		t.Fatal("empty corpus manifest")
	}
	return rows
}

func TestSpecCorpusReproducesGoldens(t *testing.T) {
	for _, row := range corpusManifest(t) {
		specFile, kind, golden := row[0], row[1], row[2]
		t.Run(filepath.Base(specFile)+"/"+kind, func(t *testing.T) {
			data, err := os.ReadFile(specFile)
			if err != nil {
				t.Fatalf("reading spec: %v", err)
			}
			s, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			sc, err := FromSpec(s)
			if err != nil {
				t.Fatalf("FromSpec: %v", err)
			}
			var got bytes.Buffer
			var sink *StreamSink
			switch kind {
			case "jsonl", "csv":
				format := ExportJSONL
				if kind == "csv" {
					format = ExportCSV
				}
				if sink, err = NewStreamSink(&got, format); err != nil {
					t.Fatalf("NewStreamSink: %v", err)
				}
				sc.Bus().Subscribe(sink.OnEvent)
			case "timeline":
			default:
				t.Fatalf("unknown manifest kind %q", kind)
			}
			DriveSpec(sc, s)
			if sink != nil {
				if err := sink.Flush(); err != nil {
					t.Fatalf("Flush: %v", err)
				}
			} else if err := sc.Timeline().WriteText(&got); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("spec run drifted from golden %s (%d bytes vs %d)", golden, got.Len(), len(want))
			}
		})
	}
}

// TestSpecCorpusIsCanonical: committed spec files must be their own
// canonical form, byte for byte — Parse → Canonicalize → Marshal is the
// identity on them, which is what lets `-dump-spec` round-trip and keeps
// diffs on the corpus meaningful.
func TestSpecCorpusIsCanonical(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "specs", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus specs (err %v)", err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		s, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", file, err)
		}
		c, err := CanonicalizeSpec(s)
		if err != nil {
			t.Fatalf("CanonicalizeSpec(%s): %v", file, err)
		}
		out, err := MarshalSpec(c)
		if err != nil {
			t.Fatalf("MarshalSpec(%s): %v", file, err)
		}
		if !bytes.Equal(out, data) {
			t.Errorf("%s is not canonical; regenerate with satin-sim -spec %s -dump-spec", file, file)
		}
	}
}
