// Package satin is a simulation-based reproduction of "SATIN: A Secure and
// Trustworthy Asynchronous Introspection on Multi-Core ARM Processors"
// (DSN 2019).
//
// It provides a deterministic discrete-event model of the paper's testbed —
// an ARM Juno r1 board with TrustZone, a Linux-like rich OS, and the timing
// behavior the paper measured — plus full implementations of both sides of
// the paper's arms race:
//
//   - the TZ-Evader evasion attack (user-level prober, KProber-I/II, the
//     GETTID rootkit, and hide/reinstall logic racing the introspection);
//   - the baseline asynchronous introspection TZ-Evader defeats;
//   - SATIN itself (divide-and-conquer integrity checking, secure-timer
//     self-activation, wake-up time queue, multi-core collaboration).
//
// The Scenario type assembles a complete testbed; everything it returns is
// driven by a virtual clock, so simulated hours run in real-time seconds
// and every run is reproducible from its seed.
//
//	sc, err := satin.NewScenario(satin.WithSeed(42), satin.WithSATIN(satin.DefaultConfig()))
//	...
//	sc.Run(10 * time.Minute) // virtual minutes
//	fmt.Println(sc.SATIN().Alarms())
package satin

import (
	"context"
	"fmt"
	"io"
	"time"

	"satin/internal/attack"
	"satin/internal/core"
	"satin/internal/faultinject"
	"satin/internal/hw"
	"satin/internal/introspect"
	"satin/internal/mem"
	"satin/internal/obs"
	"satin/internal/profile"
	"satin/internal/richos"
	"satin/internal/runner"
	"satin/internal/simclock"
	"satin/internal/syncguard"
	"satin/internal/trace"
	"satin/internal/trustzone"
)

// Re-exported defense types (the paper's contribution).
type (
	// Config tunes SATIN; see DefaultConfig.
	Config = core.Config
	// Round is one completed SATIN introspection round.
	Round = core.Round
	// Alarm is a detected integrity violation.
	Alarm = core.Alarm
	// SATIN is the secure-world introspection service.
	SATIN = core.SATIN
	// Reporter signs alarms with the secure-world key (§V-B's "raise an
	// alarm to the server side").
	Reporter = core.Reporter
	// SignedAlarm is one authenticated alarm record.
	SignedAlarm = core.SignedAlarm
)

// NewReporter creates an alarm reporter with the given device key.
func NewReporter(key []byte) (*Reporter, error) { return core.NewReporter(key) }

// VerifyAlarm checks a signed alarm record against the device key.
func VerifyAlarm(key []byte, rec SignedAlarm) bool { return core.VerifyAlarm(key, rec) }

// VerifySequence checks a batch of reports for gaps (suppressed alarms).
func VerifySequence(from uint64, recs []SignedAlarm) error { return core.VerifySequence(from, recs) }

// Re-exported attack types.
type (
	// Rootkit is the paper's sample GETTID syscall-table hijack.
	Rootkit = attack.Rootkit
	// Evader is the full-fidelity (thread-level) TZ-Evader.
	Evader = attack.Evader
	// FastEvader is the calibrated O(1)-per-event TZ-Evader for long runs.
	FastEvader = attack.FastEvader
	// ProberConfig tunes the evader's probing threads.
	ProberConfig = attack.ProberConfig
)

// Re-exported substrate types.
type (
	// Platform is the simulated Juno r1 board.
	Platform = hw.Platform
	// Image is the booted kernel image.
	Image = mem.Image
	// OS is the simulated rich OS.
	OS = richos.OS
	// Monitor is the EL3 secure monitor.
	Monitor = trustzone.Monitor
	// Checker is the secure-world memory checker both SATIN and the
	// baseline hash through.
	Checker = introspect.Checker
	// Baseline is the pre-SATIN periodic full-kernel checker.
	Baseline = introspect.Baseline
	// BaselineConfig tunes it.
	BaselineConfig = introspect.BaselineConfig
	// Technique is the memory-acquisition technique (DirectHash or
	// SnapshotHash).
	Technique = introspect.Technique
	// BaselineOutcome is one completed baseline round.
	BaselineOutcome = introspect.Outcome
	// Engine is the discrete-event engine driving everything.
	Engine = simclock.Engine
	// Timeline is a merged, time-ordered event stream of a run.
	Timeline = trace.Timeline
	// TimelineEvent is one Timeline entry.
	TimelineEvent = trace.Event
	// SyncGuard is the synchronous introspection of §VII-A.
	SyncGuard = syncguard.Guard
	// InterruptFlood is the §V-B interference attack.
	InterruptFlood = attack.InterruptFlood
	// RoutingMode is the §II-B NS-interrupt routing configuration.
	RoutingMode = trustzone.RoutingMode
)

// Re-exported enums for baseline configuration.
const (
	// FixedCore always checks on one core.
	FixedCore = introspect.FixedCore
	// RandomCore checks on a random core each round.
	RandomCore = introspect.RandomCore
	// DirectHash reads and hashes live kernel memory.
	DirectHash = introspect.DirectHash
	// SnapshotHash copies first, then hashes the frozen copy.
	SnapshotHash = introspect.SnapshotHash
	// NonPreemptive is SATIN's SCR_EL3.IRQ=0 interrupt routing.
	NonPreemptive = trustzone.NonPreemptive
	// Preemptive is the OP-TEE-style routing an interrupt flood exploits.
	Preemptive = trustzone.Preemptive
)

// DefaultConfig returns the paper's experimental SATIN configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Re-exported fault-injection types. A FaultPlan describes deterministic
// hardware-timing perturbations — rate jitter, DVFS steps, core hotplug,
// interrupt delay/drop, world-switch spikes — that compose over a scenario
// via WithFaultPlan. The empty plan installs nothing and a run stays
// byte-identical to an unperturbed one.
type (
	// FaultPlan describes what to inject; see faultinject.Plan.
	FaultPlan = faultinject.Plan
	// FaultDVFSStep is one scheduled frequency change.
	FaultDVFSStep = faultinject.DVFSStep
	// FaultHotplugEvent is one scheduled core offline/online transition.
	FaultHotplugEvent = faultinject.HotplugEvent
	// FaultIRQ perturbs interrupt delivery at the GIC.
	FaultIRQ = faultinject.IRQFaults
	// FaultSwitch adds world-switch entry-latency spikes.
	FaultSwitch = faultinject.SwitchFaults
	// FaultInjector is an installed plan; Scenario.Faults returns it.
	FaultInjector = faultinject.Injector
)

// ParseFaultPlan builds a FaultPlan from the `-faults` spec grammar
// (e.g. "scale:1.5" or "jitter:0.2;dvfs:at=30s,factor=0.5;hotplug:core=5,off=1m,on=2m").
func ParseFaultPlan(spec string) (FaultPlan, error) { return faultinject.ParsePlan(spec) }

// ScaledFaultPlan maps one perturbation magnitude to a plan, the knob the
// sensitivity sweeps turn; magnitude 0 is the empty plan.
func ScaledFaultPlan(mag float64) FaultPlan { return faultinject.ScaledPlan(mag) }

// Re-exported observability types. Every Scenario carries a live event bus
// and a metrics registry (disable with WithObservability(false)): components
// publish trace events as they happen and keep named counters, gauges, and
// fixed-bucket histograms. Everything is driven by virtual time, so a
// fixed-seed run's bus stream and metrics snapshot are byte-identical across
// runs and worker counts.
type (
	// Bus is the live event bus; Subscribe receives every trace event as
	// it is published.
	Bus = obs.Bus
	// MetricsSnapshot is a point-in-time copy of every metric, sorted by
	// name.
	MetricsSnapshot = obs.Snapshot
	// MetricRow is one metric in a snapshot.
	MetricRow = obs.Row
	// MetricBucket is one histogram bucket in a snapshot row.
	MetricBucket = obs.Bucket
	// StreamSink writes each published event to a writer as it happens
	// (the engine behind `satin-sim -trace-out`).
	StreamSink = obs.StreamSink
	// ExportFormat selects a streaming export encoding.
	ExportFormat = obs.Format
)

// Streaming export formats.
const (
	// ExportJSONL writes one JSON object per event per line.
	ExportJSONL = obs.JSONL
	// ExportCSV writes a header then one row per event.
	ExportCSV = obs.CSV
)

// NewStreamSink builds a streaming event sink over w; subscribe its OnEvent
// to a scenario's Bus, then Flush when the run ends.
func NewStreamSink(w io.Writer, format ExportFormat) (*StreamSink, error) {
	return obs.NewStreamSink(w, format)
}

// Re-exported profiling types. WithProfiling(true) attaches a causal span
// profiler: world switches, secure dispatches, introspection rounds,
// per-chunk hash walks, and evader evasion windows become typed intervals
// of virtual time with parent/child causality links, assembled
// deterministically as the run executes. The profiler never publishes to
// the bus, so attaching it cannot change a run's event stream; detached
// (the default), the emit points cost one nil check each.
type (
	// Profiler is the span collector; Scenario.Profiler returns it.
	Profiler = profile.Profiler
	// ProfileSpan is one typed interval of virtual time.
	ProfileSpan = profile.Span
	// ProfileSpanKind classifies a span.
	ProfileSpanKind = profile.SpanKind
	// ProfileSummary is the derived per-core attribution view; summaries
	// from sweep seeds merge deterministically via MergeProfiles.
	ProfileSummary = profile.Summary
	// TraceDiffReport is the outcome of aligning two trace exports.
	TraceDiffReport = trace.DiffReport
)

// MergeProfiles folds per-seed profile summaries into one, in the order
// given (pass them seed-ordered for deterministic output).
func MergeProfiles(sums []ProfileSummary) ProfileSummary { return profile.Merge(sums) }

// DiffTraces aligns two exported event streams by (kind, core, area) and
// reports first divergence plus per-group latency deltas — the regression
// gate behind `satin-sim -diff` and tools/tracediff.
func DiffTraces(a, b []TimelineEvent) TraceDiffReport { return trace.Diff(a, b) }

// CheckTraceOrdered verifies a stream's timestamps are non-decreasing, as
// any live export must be; `satin-sim -lint-trace` applies it after parsing.
func CheckTraceOrdered(events []TimelineEvent) error { return trace.CheckOrdered(events) }

// ValidateChromeTrace parses r as Chrome trace_event JSON and checks the
// invariants Perfetto's importer relies on (structure, required fields,
// per-track span nesting). It returns the number of events checked.
func ValidateChromeTrace(r io.Reader) (int, error) { return profile.ValidateChromeTrace(r) }

// ReadTraceJSONL parses a JSONL event stream written by a StreamSink —
// the validation half of the export, used by `satin-sim -lint-trace` and
// the CI smoke check.
func ReadTraceJSONL(r io.Reader) ([]TimelineEvent, error) { return obs.ReadJSONL(r) }

// Multi-seed sweep types. A single Scenario run is one Monte Carlo sample
// of a timing race; a Sweep reruns the same scenario across independent
// seeds on a worker pool and aggregates per-seed metrics into
// distributions, merged in seed order so output is byte-identical for any
// worker count.
type (
	// Sweep is the deterministic aggregate of a multi-seed run.
	Sweep = runner.Sweep
	// SweepMetrics is one seed's named measurements, in report order.
	SweepMetrics = runner.Metrics
	// SweepSample is one named measurement.
	SweepSample = runner.Sample
	// SweepFailure records a seed whose trial errored or panicked.
	SweepFailure = runner.Failure
)

// RunSeeds runs trial for seeds baseSeed..baseSeed+seeds-1 across up to
// `workers` goroutines (0 means GOMAXPROCS) and aggregates the per-seed
// metrics. Each trial typically builds its own Scenario from its seed —
// scenarios are single-threaded internally, so trials are embarrassingly
// parallel. A trial that errors or panics becomes a Failure in the sweep
// rather than aborting it.
//
//	sw, err := satin.RunSeeds("detection", 1, 32, 0, func(seed uint64) (satin.SweepMetrics, error) {
//	    sc, err := satin.NewScenario(satin.WithSeed(seed), ...)
//	    if err != nil { return nil, err }
//	    sc.RunToCompletion()
//	    return satin.SweepMetrics{}.Add("alarms", float64(len(sc.SATIN().Alarms()))), nil
//	})
func RunSeeds(name string, baseSeed uint64, seeds, workers int, trial func(seed uint64) (SweepMetrics, error)) (*Sweep, error) {
	return RunSeedsObserved(context.Background(), name, baseSeed, seeds, workers, nil, trial)
}

// SweepProgress observes trial completions live: done/total counts, the
// finished trial's index (its seed is baseSeed+index), wall-clock duration,
// and error. Notices arrive in completion order, which depends on
// scheduling — route them to stderr or a TUI, never into results.
type SweepProgress = runner.Progress

// RunSeedsObserved is RunSeeds with a context and a live progress observer
// (either may be nil/background).
func RunSeedsObserved(ctx context.Context, name string, baseSeed uint64, seeds, workers int, progress SweepProgress, trial func(seed uint64) (SweepMetrics, error)) (*Sweep, error) {
	return runner.RunSweepObserved(ctx, name, baseSeed, seeds, workers, progress,
		func(_ context.Context, seed uint64) (runner.Metrics, error) {
			return trial(seed)
		})
}

// DefaultProberSleep is the paper's Tsleep (2e-4 s).
const DefaultProberSleep = attack.DefaultProberSleep

// DefaultThreshold is the paper's operational probing threshold (1.8e-3 s).
const DefaultThreshold = 1800 * time.Microsecond

// Scenario is a fully assembled testbed: platform, monitor, kernel image,
// rich OS, and optionally SATIN, a baseline checker, and an evader.
type Scenario struct {
	seed    uint64
	engine  *simclock.Engine
	plat    *hw.Platform
	image   *mem.Image
	monitor *trustzone.Monitor
	os      *richos.OS
	checker *introspect.Checker

	satin      *core.SATIN
	baseline   *introspect.Baseline
	rootkit    *attack.Rootkit
	fastEvader *attack.FastEvader
	evader     *attack.Evader
	guard      *syncguard.Guard
	flood      *attack.InterruptFlood
	injector   *faultinject.Injector

	bus      *obs.Bus
	reg      *obs.Registry
	timeline *trace.Timeline
	prof     *profile.Profiler

	// bootGens is the per-page write-generation baseline captured when
	// construction finished: boot fill, guard protections, and the initial
	// rootkit install have all landed. A checkpoint's copy-on-write memory
	// capture stores exactly the pages whose generation has moved since
	// (see checkpoint.go).
	bootGens []uint64
}

// Option configures a Scenario.
type Option func(*options)

// evaderKind selects which evader (if any) a scenario installs.
type evaderKind int

const (
	evaderNone evaderKind = iota
	evaderFast
	evaderThread
)

type options struct {
	seed          uint64
	satinCfg      *core.Config
	baselineCfg   *introspect.BaselineConfig
	evader        evaderKind
	evaderSleep   time.Duration
	evaderThresh  time.Duration
	rootkitTarget *uint64
	guard         bool
	guardBypass   bool
	routing       trustzone.RoutingMode
	floodRate     float64
	noObs         bool
	noHashCache   bool
	profiling     bool
	faults        faultinject.Plan
}

// WithSeed sets the root seed for every deterministic stream.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithSATIN installs SATIN with the given configuration and starts it at
// boot.
func WithSATIN(cfg Config) Option { return func(o *options) { o.satinCfg = &cfg } }

// WithBaseline installs the pre-SATIN periodic checker instead of SATIN.
func WithBaseline(cfg BaselineConfig) Option { return func(o *options) { o.baselineCfg = &cfg } }

// WithFastEvader installs the GETTID rootkit driven by the calibrated
// fast evader. Zero durations select the paper's defaults.
func WithFastEvader(sleep, threshold time.Duration) Option {
	return func(o *options) {
		o.evader = evaderFast
		o.evaderSleep = sleep
		o.evaderThresh = threshold
	}
}

// WithThreadEvader installs the GETTID rootkit driven by the full
// thread-level evader (KProber-II probing threads on every core).
func WithThreadEvader(threshold time.Duration) Option {
	return func(o *options) {
		o.evader = evaderThread
		o.evaderThresh = threshold
	}
}

// WithProberSleep overrides the evader's probing interval Tsleep (zero keeps
// DefaultProberSleep). WithFastEvader takes the sleep directly; this option
// exists so the thread-level evader's sleep is reachable too — scenario
// specs set it for either kind.
func WithProberSleep(sleep time.Duration) Option {
	return func(o *options) { o.evaderSleep = sleep }
}

// WithRootkitAt plants the evader's 8-byte trace at an arbitrary
// static-kernel address instead of the GETTID table entry.
func WithRootkitAt(addr uint64) Option {
	return func(o *options) { o.rootkitTarget = &addr }
}

// WithSyncGuard installs the §VII-A synchronous guard at boot. With bypass
// false, any evader in the scenario fails to install its rootkit and
// NewScenario returns that error — the guard working as intended. With
// bypass true, the attacker first runs the write-what-where AP-flip exploit
// against its target pages, so the hijack lands silently (§VII-A's story).
func WithSyncGuard(bypass bool) Option {
	return func(o *options) {
		o.guard = true
		o.guardBypass = bypass
	}
}

// WithRouting selects the §II-B NS-interrupt routing mode. SATIN's design
// requires NonPreemptive (the default); passing WithRouting(NonPreemptive)
// explicitly is identical to omitting the option. An unknown mode —
// including the zero RoutingMode — fails NewScenario rather than being
// silently ignored.
func WithRouting(mode RoutingMode) Option {
	return func(o *options) { o.routing = mode }
}

// WithObservability enables or disables the scenario's event bus, timeline,
// and metrics registry. It is enabled by default; disable it to measure the
// zero-overhead path (publishes early-return, metric handles are nil
// no-ops), in which case Bus returns nil, Timeline stays empty, and Metrics
// returns an empty snapshot.
func WithObservability(enabled bool) Option {
	return func(o *options) { o.noObs = !enabled }
}

// WithProfiling attaches the causal span profiler to every component in
// the scenario (monitor, checker, SATIN, evader). It is off by default —
// the detached emit points cost one nil check each, so profiling is purely
// opt-in. Attaching it never changes the run: spans are assembled on the
// side and the profiler only *subscribes* to the bus (for instants and
// detection latency), never publishes. Retrieve results via
// Scenario.Profiler().
func WithProfiling(enabled bool) Option {
	return func(o *options) { o.profiling = enabled }
}

// WithHashCache enables or disables the checker's incremental hash cache.
// It is enabled by default and never changes results — cached and uncached
// checks return bit-identical sums at identical virtual instants (the cache
// is validated by per-page write generations at the moment each chunk would
// have been read). Disabling it forces every chunk to be re-hashed, which is
// only useful for measuring the cache's speedup or cross-checking its
// transparency, as the golden regression tests do.
func WithHashCache(enabled bool) Option {
	return func(o *options) { o.noHashCache = !enabled }
}

// WithFlood starts the §V-B SGI interrupt flood at boot, at the given
// per-core rate (interrupts/second).
func WithFlood(rate float64) Option {
	return func(o *options) { o.floodRate = rate }
}

// WithFaultPlan installs the deterministic fault-injection plan at boot:
// per-core rate jitter is applied immediately, DVFS and hotplug events are
// scheduled at their virtual times, and interrupt/world-switch perturbation
// hooks are wired in. Every injected fault appears as a "fault" trace event
// and in the fault.* metrics. The empty plan installs nothing — the run is
// byte-identical to one built without this option.
func WithFaultPlan(plan FaultPlan) Option {
	return func(o *options) { o.faults = plan }
}

// NewScenario assembles and boots a testbed.
func NewScenario(opts ...Option) (*Scenario, error) {
	o := options{
		seed:         1,
		evaderSleep:  DefaultProberSleep,
		evaderThresh: DefaultThreshold,
		routing:      trustzone.NonPreemptive,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.evaderSleep == 0 {
		o.evaderSleep = DefaultProberSleep
	}
	if o.evaderThresh == 0 {
		o.evaderThresh = DefaultThreshold
	}
	if o.satinCfg != nil && o.baselineCfg != nil {
		return nil, fmt.Errorf("satin: a scenario runs either SATIN or the baseline, not both")
	}
	switch o.routing {
	case trustzone.NonPreemptive, trustzone.Preemptive:
	default:
		return nil, fmt.Errorf("satin: unknown routing mode %v", o.routing)
	}

	engine := simclock.NewEngine()
	plat, err := hw.NewJunoR1(engine)
	if err != nil {
		return nil, err
	}
	image, err := mem.NewJunoImage(o.seed)
	if err != nil {
		return nil, err
	}
	osim, err := richos.NewOS(plat, image, richos.Config{Seed: o.seed + 1})
	if err != nil {
		return nil, err
	}
	checker, err := introspect.NewChecker(image, plat.Perf(), o.seed+2, introspect.HashDjb2, 0)
	if err != nil {
		return nil, err
	}
	checker.SetHashCache(!o.noHashCache)
	sc := &Scenario{
		seed:     o.seed,
		engine:   engine,
		plat:     plat,
		image:    image,
		monitor:  trustzone.NewMonitor(plat, o.seed+3),
		os:       osim,
		checker:  checker,
		timeline: &trace.Timeline{},
	}
	sc.monitor.SetRouting(o.routing)
	if !o.noObs {
		sc.bus = obs.NewBus()
		sc.reg = obs.NewRegistry()
		sc.bus.Subscribe(sc.timeline.Observe)
		sc.monitor.Observe(sc.bus, sc.reg)
		sc.checker.Observe(sc.reg)
	}
	if o.guard {
		sc.guard = syncguard.New(osim)
		if err := sc.guard.Install(); err != nil {
			return nil, err
		}
	}

	// Attack side first (the persistent threat predates the defense).
	if o.evader != evaderNone {
		if o.rootkitTarget != nil {
			sc.rootkit = attack.NewRootkitAt(osim, image, *o.rootkitTarget)
		} else {
			sc.rootkit = attack.NewRootkit(osim, image)
		}
		if o.guard && o.guardBypass {
			if _, err := syncguard.APFlipExploit(image, sc.rootkit.TargetAddr(), attack.TraceBytes); err != nil {
				return nil, err
			}
			// The flipped PTE is now part of the attack surface; golden
			// hashes were captured before, so area 17 will flag it.
		}
		switch o.evader {
		case evaderFast:
			fe, err := attack.NewFastEvader(plat, image, sc.rootkit, o.evaderSleep, o.evaderThresh, o.seed+4)
			if err != nil {
				return nil, err
			}
			fe.Observe(sc.bus, sc.reg)
			if err := fe.Start(); err != nil {
				return nil, err
			}
			sc.fastEvader = fe
		case evaderThread:
			buf, err := attack.NewReportBuffer(plat.NumCores(), attack.JunoCrossCoreNoise(), o.seed+5)
			if err != nil {
				return nil, err
			}
			ev, err := attack.NewEvader(osim, sc.rootkit, buf, attack.EvaderConfig{
				Prober: attack.ProberConfig{Kind: attack.KProberII, Sleep: o.evaderSleep, Threshold: o.evaderThresh},
				Seed:   o.seed + 6,
			})
			if err != nil {
				return nil, err
			}
			ev.Observe(sc.bus, sc.reg)
			if err := ev.Start(); err != nil {
				return nil, err
			}
			sc.evader = ev
		}
	}

	// Defense side.
	if o.satinCfg != nil {
		s, err := core.NewJuno(plat, sc.monitor, image, checker, *o.satinCfg)
		if err != nil {
			return nil, err
		}
		s.Observe(sc.bus, sc.reg)
		if err := s.Start(); err != nil {
			return nil, err
		}
		sc.satin = s
	}
	if o.baselineCfg != nil {
		b, err := introspect.NewBaseline(plat, sc.monitor, checker, image, o.seed+7, *o.baselineCfg)
		if err != nil {
			return nil, err
		}
		b.Observe(sc.bus, sc.reg)
		if err := b.Start(); err != nil {
			return nil, err
		}
		sc.baseline = b
	}
	if o.floodRate > 0 {
		fl, err := attack.NewInterruptFlood(plat, o.floodRate, nil)
		if err != nil {
			return nil, err
		}
		if err := fl.Start(); err != nil {
			return nil, err
		}
		sc.flood = fl
	}
	// Fault injection composes last, over the fully assembled testbed, so
	// hotplug re-routing finds SATIN already subscribed and jitter rescales
	// the final calibrated rates. Skipped entirely for the empty plan.
	if !o.faults.Empty() {
		inj, err := faultinject.Install(o.faults, plat, sc.monitor, o.seed+8, sc.bus, sc.reg)
		if err != nil {
			return nil, err
		}
		sc.injector = inj
	}
	// Profiling attaches last, over the fully assembled testbed: every
	// component gets the same handle, and the profiler subscribes to the bus
	// (never publishes), so the event stream and goldens are untouched.
	if o.profiling {
		p := profile.NewProfiler(plat.NumCores())
		p.Observe(sc.reg)
		if sc.bus != nil {
			sc.bus.Subscribe(p.OnEvent)
		}
		sc.monitor.SetProfiler(p)
		sc.checker.SetProfiler(p)
		if sc.satin != nil {
			sc.satin.SetProfiler(p)
		}
		if sc.fastEvader != nil {
			sc.fastEvader.SetProfiler(p)
		}
		if sc.evader != nil {
			sc.evader.SetProfiler(p)
		}
		sc.prof = p
	}
	sc.bootGens = image.Mem().PageGens()
	return sc, nil
}

// Run advances virtual time by d.
func (s *Scenario) Run(d time.Duration) { s.engine.RunFor(d) }

// RunToCompletion drains every pending event. Use it only with bounded
// configurations (MaxRounds on SATIN/baseline) and WITHOUT the thread-level
// evader or workloads: perpetual threads schedule events forever, so a
// scenario containing them never drains — drive those with Run instead.
func (s *Scenario) RunToCompletion() { s.engine.Run() }

// Now reports the current virtual time since boot.
func (s *Scenario) Now() time.Duration { return s.engine.Now().Duration() }

// Engine returns the discrete-event engine.
func (s *Scenario) Engine() *Engine { return s.engine }

// Platform returns the simulated board.
func (s *Scenario) Platform() *Platform { return s.plat }

// Image returns the kernel image.
func (s *Scenario) Image() *Image { return s.image }

// OS returns the rich OS.
func (s *Scenario) OS() *OS { return s.os }

// Monitor returns the secure monitor.
func (s *Scenario) Monitor() *Monitor { return s.monitor }

// Checker returns the secure-world memory checker, for inspecting the
// incremental hash cache (CacheStats, HashCacheEnabled) and the hash kind.
func (s *Scenario) Checker() *Checker { return s.checker }

// SATIN returns the SATIN service, or nil if not installed.
func (s *Scenario) SATIN() *SATIN { return s.satin }

// Baseline returns the baseline checker, or nil if not installed.
func (s *Scenario) Baseline() *Baseline { return s.baseline }

// Rootkit returns the rootkit, or nil if no evader was installed.
func (s *Scenario) Rootkit() *Rootkit { return s.rootkit }

// FastEvader returns the fast evader, or nil.
func (s *Scenario) FastEvader() *FastEvader { return s.fastEvader }

// ThreadEvader returns the thread-level evader, or nil.
func (s *Scenario) ThreadEvader() *Evader { return s.evader }

// Guard returns the synchronous guard, or nil.
func (s *Scenario) Guard() *SyncGuard { return s.guard }

// Flood returns the interrupt flood, or nil.
func (s *Scenario) Flood() *InterruptFlood { return s.flood }

// Faults returns the installed fault injector, or nil when the scenario was
// built without a fault plan (or with an empty one).
func (s *Scenario) Faults() *FaultInjector { return s.injector }

// Profiler returns the causal span profiler, or nil when the scenario was
// built without WithProfiling(true). A nil Profiler is still a valid
// zero-cost handle: every method on it is a no-op.
func (s *Scenario) Profiler() *Profiler { return s.prof }

// Bus returns the live event bus, or nil when the scenario was built with
// WithObservability(false). Subscribe before driving the scenario to stream
// every trace event as it happens:
//
//	sink, _ := satin.NewStreamSink(f, satin.ExportJSONL)
//	sc.Bus().Subscribe(sink.OnEvent)
func (s *Scenario) Bus() *Bus { return s.bus }

// Timeline returns the run's time-ordered event stream — world entries,
// SATIN rounds and alarms, baseline outcomes, and evader reactions. The
// timeline is filled live by a bus subscription installed at construction,
// so it can be inspected mid-run; it is empty when the scenario was built
// with WithObservability(false).
func (s *Scenario) Timeline() *trace.Timeline { return s.timeline }

// Metrics snapshots every metric the run has accumulated: counters, gauges,
// and histograms from the monitor (world-switch latency), SATIN (round
// durations per area, alarms, queue depth), the checker (bytes hashed and
// copied), the baseline, any evader, plus the engine's own gauges
// (virtual time, events dispatched, pending events), refreshed at snapshot
// time. Returns an empty snapshot under WithObservability(false).
func (s *Scenario) Metrics() MetricsSnapshot {
	if s.reg == nil {
		return MetricsSnapshot{}
	}
	s.reg.Gauge("engine.virtual_time_ns").Set(int64(s.engine.Now()))
	s.reg.Gauge("engine.events_dispatched").Set(int64(s.engine.Dispatched()))
	s.reg.Gauge("engine.pending_events").Set(int64(s.engine.Pending()))
	return s.reg.Snapshot()
}

// Report is a Scenario's end-of-run summary: what the defense and the
// attacker each did, the detection verdict, and the final metrics snapshot.
// The cmds and examples render their output from it.
type Report struct {
	// Seed is the scenario's root seed.
	Seed uint64
	// Elapsed is the virtual time since boot.
	Elapsed time.Duration

	// SATINRounds, FullScans, and Alarms summarize SATIN (zero when the
	// scenario runs the baseline or no defense).
	SATINRounds int
	FullScans   int
	Alarms      int

	// BaselineRounds and BaselineClean summarize the baseline checker.
	BaselineRounds int
	BaselineClean  int

	// Evader reaction counts, from whichever evader is installed.
	Suspects   int
	Hides      int
	CoreBacks  int
	Reinstalls int

	// RootkitState names the rootkit's final state ("" without an evader).
	RootkitState string

	// Detected reports the defense's verdict: SATIN raised at least one
	// alarm, or the baseline saw at least one dirty round.
	Detected bool

	// Metrics is the end-of-run snapshot (empty when observability is off).
	Metrics MetricsSnapshot
}

// Report summarizes the run so far.
func (s *Scenario) Report() Report {
	r := Report{Seed: s.seed, Elapsed: s.Now(), Metrics: s.Metrics()}
	if s.satin != nil {
		r.SATINRounds = len(s.satin.Rounds())
		r.FullScans = s.satin.FullScans()
		r.Alarms = len(s.satin.Alarms())
	}
	if s.baseline != nil {
		for _, out := range s.baseline.Outcomes() {
			r.BaselineRounds++
			if out.Clean {
				r.BaselineClean++
			}
		}
	}
	r.Detected = r.Alarms > 0 || r.BaselineRounds > r.BaselineClean
	var evaderEvents []attack.Event
	if s.fastEvader != nil {
		evaderEvents = s.fastEvader.Events()
	} else if s.evader != nil {
		evaderEvents = s.evader.Events()
	}
	for _, e := range evaderEvents {
		switch e.Kind {
		case attack.EventSuspect:
			r.Suspects++
		case attack.EventHidden:
			r.Hides++
		case attack.EventCoreBack:
			r.CoreBacks++
		case attack.EventReinstalled:
			r.Reinstalls++
		}
	}
	if s.rootkit != nil {
		r.RootkitState = s.rootkit.State().String()
	}
	return r
}
